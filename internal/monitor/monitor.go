// Package monitor is an online, single-pass data-race monitor over a
// *single observed trace* — the streaming counterpart of the exhaustive
// trace enumeration in internal/race.
//
// The exhaustive checkers decide the paper's definitions by enumerating
// every trace of a program, which caps them at litmus-sized inputs. This
// package makes the same definitions executable at scale: given one trace
// of machine transitions (millions of events, e.g. produced by
// internal/schedgen), it computes the happens-before relation of def. 8
// incrementally with vector clocks and reports every conflicting
// unordered pair (defs. 9/10), deduplicated exactly as
// race.Races/race.FindRaces deduplicate — by location, thread pair and
// access kinds.
//
// # Algorithm
//
// Each thread t carries a vector clock C_t with C_t[u] = the largest
// event index of thread u that happens-before t's next event. The three
// synchronisation edge families of def. 8 become clock joins:
//
//   - program order: C_t[t] is incremented at every event of t;
//   - SC atomics: each atomic location A carries the released clock L_A
//     of its latest write (which transitively includes all earlier
//     writes); an atomic write joins L_A into C_t and stores C_t back, an
//     atomic read only joins (def. 8 orders atomic writes before later
//     reads and writes, but reads before nothing);
//   - release-acquire: each RA message (timestamp) carries the clock its
//     writer published; an RA read joins the clock of exactly the message
//     it reads from (same location, same timestamp — the §10 reads-from
//     edge), and RA writes synchronise with nothing else.
//
// Nonatomic accesses induce no edges. For each nonatomic location the
// monitor keeps the per-thread clocks of the last read and last write
// (the FastTrack escalated representation): access j by thread t races
// with some earlier access of thread u iff it races with u's *latest*
// earlier access of that kind (program order makes earlier ones ordered
// whenever the latest is), so per-thread last-access clocks identify the
// full deduplicated report set, not merely race existence.
//
// Complexity: O(events × threads) time worst case and
// O(locations × threads²) space (the per-location clock vectors are
// O(threads); the race-dedup bitmasks are O(threads²) per nonatomic
// location), plus O(messages) for live release-acquire messages. The common case is far better: a FastTrack-style same-thread
// fast path skips the O(threads) scans entirely while a location is
// accessed by a single thread with no unordered history — long bursts
// (the bursty schedules of internal/schedgen) monitor in O(1) per event.
package monitor

import (
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// Kind classifies an event: the cross product of read/write and the
// location flavour (nonatomic, SC atomic, release-acquire).
type Kind uint8

const (
	// ReadNA is a nonatomic read.
	ReadNA Kind = iota
	// WriteNA is a nonatomic write.
	WriteNA
	// ReadAT is an SC-atomic read.
	ReadAT
	// WriteAT is an SC-atomic write.
	WriteAT
	// ReadRA is a release-acquire read.
	ReadRA
	// WriteRA is a release-acquire write.
	WriteRA
)

// IsWrite reports whether the kind is a write.
func (k Kind) IsWrite() bool { return k == WriteNA || k == WriteAT || k == WriteRA }

// Event is one trace transition in streaming form: thread and location as
// dense indices (see Table for the mapping from programs), the access
// kind, and — for release-acquire events only — the message timestamp
// that identifies the reads-from edge.
type Event struct {
	Thread int32
	Loc    int32
	Kind   Kind
	// Time is the RA message timestamp (Read-RA joins the clock of the
	// write with the equal timestamp). Ignored for NA and AT events.
	Time ts.Time
}

// LocDecl declares one location of the monitored program: its name (used
// in reports) and kind. The slice index is the Event.Loc index.
type LocDecl struct {
	Name prog.Loc
	Kind prog.LocKind
}

// tsKey is the canonical map key of an RA timestamp (normalised rational,
// so equal timestamps collide regardless of representation).
type tsKey struct{ num, den int64 }

func timeKey(t ts.Time) tsKey { return tsKey{t.Num(), t.Den()} }

// naState is the race-checking state of one nonatomic location.
type naState struct {
	// writes[u] / reads[u] hold the event index of thread u's last write /
	// read of this location (0 = none). An access by t races with u's
	// last access iff the stored index exceeds C_t[u].
	writes []uint64
	reads  []uint64
	// reported[u*threads+t] is a 4-bit set of the access-kind pairs
	// (earlier kind, later kind) already reported for the thread pair
	// (u earlier, t later) on this location — the dedup set kept as flat
	// bitmasks so the racy-location hot path never touches a hash map.
	reported []uint8
	// lastT is the thread of the last access (-1 initially); while the
	// same thread keeps accessing the location, the scans below can be
	// skipped once they have come up clean (the vectors cannot have
	// changed and C_t only grows). wClean / rClean record that the last
	// scan of the corresponding vector by lastT found no unordered entry.
	lastT  int32
	wClean bool
	rClean bool
}

// reportBit is the in-mask index of an access-kind pair.
func reportBit(wi, wj bool) uint8 {
	b := uint8(0)
	if wi {
		b |= 2
	}
	if wj {
		b |= 1
	}
	return 1 << b
}

// Monitor is the streaming race detector. Create one with New, feed it
// events in trace order with Step, and collect the deduplicated reports
// with Reports. A Monitor is not safe for concurrent use; the sharded
// parallel mode (ShardedRaces) runs one Monitor per shard.
type Monitor struct {
	decls    []LocDecl
	nthreads int
	clocks   [][]uint64 // clocks[t][u]: thread t's vector clock
	na       []naState  // indexed by location; zero-value for non-NA locations
	at       [][]uint64 // released clock L_A per atomic location
	ra       []map[tsKey][]uint64
	// shard/shards restrict nonatomic race checking to locations with
	// loc % shards == shard; synchronisation events are always processed
	// (every shard needs the full clocks). 0/1 means "all locations".
	shard, shards int32
	races         int
	events        uint64
}

// New returns a monitor for nthreads threads over the given locations.
func New(nthreads int, decls []LocDecl) *Monitor {
	m := &Monitor{
		decls:    decls,
		nthreads: nthreads,
		clocks:   make([][]uint64, nthreads),
		na:       make([]naState, len(decls)),
		at:       make([][]uint64, len(decls)),
		ra:       make([]map[tsKey][]uint64, len(decls)),
		shards:   1,
	}
	for t := range m.clocks {
		m.clocks[t] = make([]uint64, nthreads)
	}
	for l, d := range decls {
		switch d.Kind {
		case prog.Atomic:
			m.at[l] = make([]uint64, nthreads)
		case prog.ReleaseAcquire:
			m.ra[l] = make(map[tsKey][]uint64)
		default:
			m.na[l] = naState{
				writes:   make([]uint64, nthreads),
				reads:    make([]uint64, nthreads),
				reported: make([]uint8, nthreads*nthreads),
				lastT:    -1,
			}
		}
	}
	return m
}

// Reset clears all monitoring state (clocks, per-location vectors,
// reports) so the monitor can be reused for another trace of the same
// program shape without reallocating.
func (m *Monitor) Reset() {
	for _, c := range m.clocks {
		clear(c)
	}
	for l := range m.na {
		ls := &m.na[l]
		if ls.writes != nil {
			clear(ls.writes)
			clear(ls.reads)
			clear(ls.reported)
			ls.lastT = -1
			ls.wClean = false
			ls.rClean = false
		}
	}
	for _, la := range m.at {
		if la != nil {
			clear(la)
		}
	}
	for l, mm := range m.ra {
		if mm != nil && len(mm) > 0 {
			m.ra[l] = make(map[tsKey][]uint64)
		}
	}
	m.races = 0
	m.events = 0
}

// setShard restricts nonatomic race checking to locations l with
// l % shards == shard (see ShardedRaces).
func (m *Monitor) setShard(shard, shards int) {
	m.shard, m.shards = int32(shard), int32(shards)
}

// Events returns the number of events consumed since the last Reset.
func (m *Monitor) Events() uint64 { return m.events }

// RaceCount returns the number of distinct races reported so far.
func (m *Monitor) RaceCount() int { return m.races }

// Step consumes the next event of the trace.
func (m *Monitor) Step(e Event) {
	m.events++
	t := int(e.Thread)
	c := m.clocks[t]
	c[t]++
	switch e.Kind {
	case ReadNA:
		if m.shards > 1 && e.Loc%m.shards != m.shard {
			return
		}
		ls := &m.na[e.Loc]
		if ls.lastT != e.Thread {
			ls.lastT = e.Thread
			ls.wClean = m.scanWrites(ls, e.Thread, c, false)
			ls.rClean = false // unknown for this thread
		} else if !ls.wClean {
			ls.wClean = m.scanWrites(ls, e.Thread, c, false)
		}
		ls.reads[t] = c[t]
	case WriteNA:
		if m.shards > 1 && e.Loc%m.shards != m.shard {
			return
		}
		ls := &m.na[e.Loc]
		if ls.lastT != e.Thread {
			ls.lastT = e.Thread
			ls.wClean = m.scanWrites(ls, e.Thread, c, true)
			ls.rClean = m.scanReads(ls, e.Thread, c)
		} else {
			if !ls.wClean {
				ls.wClean = m.scanWrites(ls, e.Thread, c, true)
			}
			if !ls.rClean {
				ls.rClean = m.scanReads(ls, e.Thread, c)
			}
		}
		ls.writes[t] = c[t]
	case ReadAT:
		join(c, m.at[e.Loc])
	case WriteAT:
		la := m.at[e.Loc]
		join(c, la)
		copy(la, c)
	case ReadRA:
		if vc, ok := m.ra[e.Loc][timeKey(e.Time)]; ok {
			join(c, vc)
		}
	case WriteRA:
		vc := make([]uint64, len(c))
		copy(vc, c)
		m.ra[e.Loc][timeKey(e.Time)] = vc
	}
}

// scanWrites checks the current access of thread t (a read, or a write
// when isWrite) against the last write of every other thread, reporting
// each unordered pair. It returns whether the vector was clean (no
// unordered entry) — the condition under which the scan may be skipped
// for subsequent same-thread accesses.
func (m *Monitor) scanWrites(ls *naState, t int32, c []uint64, isWrite bool) bool {
	clean := true
	bit := reportBit(true, isWrite)
	for u, w := range ls.writes {
		// u == t cannot trigger: the thread's own entry is always below
		// its (just incremented) clock component.
		if w > c[u] {
			clean = false
			if p := &ls.reported[u*m.nthreads+int(t)]; *p&bit == 0 {
				*p |= bit
				m.races++
			}
		}
	}
	return clean
}

// scanReads checks a write by thread t against the last read of every
// other thread (read/write races with the read first in the trace).
func (m *Monitor) scanReads(ls *naState, t int32, c []uint64) bool {
	clean := true
	bit := reportBit(false, true)
	for u, r := range ls.reads {
		if r > c[u] {
			clean = false
			if p := &ls.reported[u*m.nthreads+int(t)]; *p&bit == 0 {
				*p |= bit
				m.races++
			}
		}
	}
	return clean
}

// join merges vc into c pointwise (c ⊔= vc).
func join(c, vc []uint64) {
	for u, v := range vc {
		if v > c[u] {
			c[u] = v
		}
	}
}

// Reports returns the distinct races observed, in the canonical order of
// race.SortReports — directly comparable with race.Races on the same
// trace.
func (m *Monitor) Reports() []race.Report {
	out := make([]race.Report, 0, m.races)
	for l := range m.na {
		out = m.appendReports(out, int32(l))
	}
	race.SortReports(out)
	return out
}

// appendReports decodes the dedup bitmasks of one location into reports.
func (m *Monitor) appendReports(out []race.Report, loc int32) []race.Report {
	ls := &m.na[loc]
	if ls.reported == nil {
		return out
	}
	for i, mask := range ls.reported {
		if mask == 0 {
			continue
		}
		u, t := i/m.nthreads, i%m.nthreads
		for b := uint8(0); b < 4; b++ {
			if mask&(1<<b) != 0 {
				out = append(out, race.Report{
					Loc:     m.decls[loc].Name,
					ThreadI: u,
					ThreadJ: t,
					WriteI:  b&2 != 0,
					WriteJ:  b&1 != 0,
				})
			}
		}
	}
	return out
}
