package monitor

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// decodeVia drains a BatchSource to the end, returning every event.
func decodeVia(t *testing.T, src BatchSource) []Event {
	t.Helper()
	var all []Event
	for {
		var ok bool
		var err error
		all, ok, err = src.NextBatch(all)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return all
		}
	}
}

// eventsEqual compares decoded event streams field-by-field (Time via
// ts equality, and only where the wire format preserves it).
func eventsEqual(t *testing.T, got, want []Event, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: decoded %d events, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Thread != w.Thread || g.Kind != w.Kind {
			t.Fatalf("%s: event %d: got %+v, want %+v", label, i, g, w)
		}
		if w.Kind != KindHalt && g.Loc != w.Loc {
			t.Fatalf("%s: event %d: loc %d, want %d", label, i, g.Loc, w.Loc)
		}
		if (w.Kind == ReadRA || w.Kind == WriteRA) && !g.Time.Equal(w.Time) {
			t.Fatalf("%s: event %d: timestamp %v, want %v", label, i, g.Time, w.Time)
		}
	}
}

// TestParallelParseMatchesSequential: the parallel reader yields exactly
// the sequential reader's event stream, for worker counts around and
// beyond the frame count, including the halt-bearing workload.
func TestParallelParseMatchesSequential(t *testing.T) {
	decls, events := syntheticWorkload(4, 16, 3*defaultFrameEvents+17, 5)
	hdr := Header{Threads: 4, Decls: decls}
	long := encodeAll(t, hdr, events, BinaryV2)
	hhdr, hevents := haltWorkload()
	short := encodeAll(t, hhdr, hevents, BinaryV2)
	cases := []struct {
		name   string
		data   []byte
		events []Event
	}{
		{"long", long, events},
		{"halts", short, hevents},
	}
	for _, tc := range cases {
		for _, parsers := range []int{1, 2, 3, 4, 8} {
			pr, err := NewParallelTraceReader(bytes.NewReader(tc.data), parsers)
			if err != nil {
				t.Fatal(err)
			}
			if parsers < 2 && pr.seq == nil {
				t.Fatalf("parsers=%d: expected sequential fallback", parsers)
			}
			got := decodeVia(t, pr)
			pr.Close()
			eventsEqual(t, got, tc.events, fmt.Sprintf("%s/parsers=%d", tc.name, parsers))
		}
	}
}

// TestParallelParseFallsBackForV1: v1 binary traces have no frames to
// parallelise; the reader must fall back and still decode correctly.
func TestParallelParseFallsBackForV1(t *testing.T) {
	hdr, events := wireWorkload()
	data := encodeAll(t, hdr, events, Binary)
	pr, err := NewParallelTraceReader(bytes.NewReader(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if pr.seq == nil {
		t.Fatal("v1 trace: expected sequential fallback")
	}
	eventsEqual(t, decodeVia(t, pr), events, "v1-fallback")
}

// TestParallelParseErrorParity: a corrupted trace must fail through the
// parallel reader with the same error, and the same decoded prefix, as
// through the sequential one — errors are stream-ordered, not
// whichever-worker-noticed-first.
func TestParallelParseErrorParity(t *testing.T) {
	decls, events := syntheticWorkload(4, 16, 2*defaultFrameEvents+100, 7)
	hdr := Header{Threads: 4, Decls: decls}
	data := encodeAll(t, hdr, events, BinaryV2)
	corrupt := [][]byte{
		data[:len(data)-3],           // truncated mid-frame
		data[:len(data)/2],           // truncated around a frame boundary
		append(bytes.Clone(data), 0), // trailing garbage frame header
	}
	for ci, cdata := range corrupt {
		var seqEvents []Event
		var seqErr error
		tr, err := NewTraceReader(bytes.NewReader(cdata))
		if err != nil {
			t.Fatal(err)
		}
		for {
			var ok bool
			seqEvents, ok, seqErr = tr.NextBatch(seqEvents)
			if seqErr != nil || !ok {
				break
			}
		}
		for _, parsers := range []int{2, 4} {
			pr, err := NewParallelTraceReader(bytes.NewReader(cdata), parsers)
			if err != nil {
				t.Fatal(err)
			}
			var parEvents []Event
			var parErr error
			for {
				var ok bool
				parEvents, ok, parErr = pr.NextBatch(parEvents)
				if parErr != nil || !ok {
					break
				}
			}
			pr.Close()
			if (seqErr == nil) != (parErr == nil) ||
				(seqErr != nil && seqErr.Error() != parErr.Error()) {
				t.Fatalf("corruption %d parsers=%d: error %q, sequential %q", ci, parsers, parErr, seqErr)
			}
			if len(parEvents) != len(seqEvents) {
				t.Fatalf("corruption %d parsers=%d: %d events before error, sequential %d",
					ci, parsers, len(parEvents), len(seqEvents))
			}
		}
	}
}

// TestParallelParseEarlyClose: abandoning the reader mid-stream must not
// deadlock or leak the worker goroutines.
func TestParallelParseEarlyClose(t *testing.T) {
	decls, events := syntheticWorkload(4, 16, 4*defaultFrameEvents, 9)
	hdr := Header{Threads: 4, Decls: decls}
	data := encodeAll(t, hdr, events, BinaryV2)
	pr, err := NewParallelTraceReader(bytes.NewReader(data), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := pr.NextBatch(nil); err != nil || !ok {
		t.Fatalf("first batch: ok=%v err=%v", ok, err)
	}
	pr.Close() // three frames still in flight
	pr.Close() // idempotent
}

// TestMonitorReaderParallelMatchesSequential: the full monitoring result
// — reports and retention stats — is identical whether the trace was
// decoded sequentially or by the parallel front-end, for both the plain
// monitor and the sharded pipeline sink.
func TestMonitorReaderParallelMatchesSequential(t *testing.T) {
	decls, events := syntheticWorkload(4, 16, 2*defaultFrameEvents+321, 11)
	hdr := Header{Threads: 4, Decls: decls}
	data := encodeAll(t, hdr, events, BinaryV2)

	want, err := MonitorReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, parsers := range []int{2, 4} {
		m, err := MonitorReaderParallel(bytes.NewReader(data), parsers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m.Reports(), want.Reports()) {
			t.Fatalf("parsers=%d: reports diverge from sequential decode", parsers)
		}
		if m.RAStats() != want.RAStats() {
			t.Fatalf("parsers=%d: RAStats %+v, want %+v", parsers, m.RAStats(), want.RAStats())
		}

		reports, stats, err := ReadRacesParallel(bytes.NewReader(data), parsers,
			PipelineConfig{Shards: 3, Rebalance: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports, want.Reports()) {
			t.Fatalf("parsers=%d: pipeline reports diverge from sequential decode", parsers)
		}
		if stats != want.RAStats() {
			t.Fatalf("parsers=%d: pipeline RAStats %+v, want %+v", parsers, stats, want.RAStats())
		}
	}
}
