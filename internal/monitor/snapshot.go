package monitor

// Checkpoint/resume: the snapshot codec that serialises the COMPLETE
// live state of a monitor — thread and release clocks, epoch-or-vector
// per-location last-access state, dedup bitmasks, live RA messages, GC
// frontier/interval/adaptive bounds, halt set — so monitoring can stop
// at any event index and resume later (possibly in another process, or
// under a different shard/GC configuration) with reports and RAStats
// byte-identical to a run that never stopped. The format doubles as a
// direct measurement of the paper's boundedness claim: the encoded size
// IS the live state, O(locations + threads² + live RA messages), so a
// snapshot of a windowed monitor stays flat over a million-event stream
// while an unbounded control grows without limit (tested).
//
// # Format
//
// A snapshot is the magic "LDCK", a version byte, and a sequence of
// framed sections, each
//
//	tag byte, uvarint payloadLen, payload
//
// in this order (tags in parentheses):
//
//	header (1)  uvarint threads, uvarint nlocs,
//	            nlocs × (uvarint len, name bytes, kind byte) — the wire
//	            format's header fields, same limits (validateHeader)
//	sync   (2)  uvarint events, gcEvery, nextGC, adaptMin, adaptMax,
//	            raPeak, raCollected; halted bitset ⌈threads/8⌉ bytes
//	clocks (3)  threads × threads uvarints (row t = thread t's clock),
//	            then threads uvarints (cached minimum frontier)
//	atomic (4)  per ATOMIC location in declaration order:
//	            threads uvarints (the released clock L_A)
//	ra     (5)  per RELEASE-ACQUIRE location in declaration order:
//	            uvarint count, then count messages sorted by timestamp
//	            (varint num, uvarint den, uvarint writer,
//	            threads uvarints — the published clock)
//	na     (6)  per NONATOMIC location in declaration order:
//	            flags byte (bit0 wClean, bit1 rClean, bit2 reported),
//	            varint wT, uvarint wC, varint rT, uvarint rC,
//	            varint lastT; if wT/rT is the escalated sentinel the
//	            per-thread vector follows (threads uvarints); if bit2,
//	            the threads² dedup mask bytes follow
//	predict(8)  OPTIONAL (v2+), present iff the predicate is not the
//	            default or a static pre-filter was active: predicate
//	            byte, uvarint window k, flags byte (bit0 = a static
//	            pre-filter was active — the mask itself is config and
//	            not serialised, but a resume without one can then warn);
//	            under PredShort, per NONATOMIC location in declaration
//	            order: uvarint entry count, entries (uvarint gidx —
//	            nondecreasing, uvarint epoch, uvarint thread, write
//	            byte), mask byte (1 = threads² window dedup masks
//	            follow); then uvarint window peak, uvarint pruned
//	reader (7)  OPTIONAL — a TraceReader continuation (see
//	            ReaderCheckpoint): uvarint byte offset, v2 flag byte,
//	            varint prevThread, v2 only: threads varints prevLoc +
//	            nlocs varints prevNum; halted bitset; uvarint pending
//	            count + pending events (kind byte, uvarint thread,
//	            uvarint loc, RA kinds: varint num + uvarint den)
//	end    (0)  empty payload, terminates the snapshot
//
// The atomic, ra and na sections are CHUNKED: the encoder flushes the
// current section at an item boundary (a location's released clock, one
// RA message, one location's NA state) once it exceeds ~1 MiB, emitting
// several consecutive sections with the same tag; the decoder fetches
// the next same-tag section whenever its cursor runs out with items
// still owed. Chunk boundaries are a deterministic function of the
// content, so the encoding stays canonical, and no single section can
// approach the decoder's hard payload limit regardless of how many RA
// messages an unbounded-GC monitor retains or how many locations have
// raced — whatever Snapshot writes, ReadSnapshot accepts.
//
// The encoding is canonical: equal monitor states produce byte-identical
// snapshots (RA messages are sorted, vectors are emitted only when
// escalated, masks only when a race was recorded), so a snapshot taken
// after a restore is byte-identical to one taken by an unsplit run at
// the same event index — and a Pipeline snapshot is byte-identical to
// the sequential Monitor's at the same position and GC configuration,
// which is what makes cross-mode resume (checkpoint sequential, resume
// sharded, or vice versa) sound.
//
// The decoder VALIDATES everything — section order and framing, header
// limits, clock-vector lengths, epoch sentinels, thread/location bounds,
// mask bits, reader-context lengths, pending events (including the halt
// promise: a pending event of a halted thread is malformed) — and
// returns errors on malformed input, never panics, and never builds a
// monitor that a subsequent Step could crash.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"slices"
	"time"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

const (
	snapMagic = "LDCK"
	// snapVersion is the version written; every version down to
	// snapVersionMin still decodes. Version 2 added the optional predict
	// section (predicate, short-race window state, static-filter flag);
	// a version-1 snapshot is exactly a version-2 one with the section
	// absent, so old checkpoints restore as default-predicate monitors.
	snapVersion    = 2
	snapVersionMin = 1

	snapTagEnd     = 0
	snapTagHeader  = 1
	snapTagSync    = 2
	snapTagClocks  = 3
	snapTagAtomic  = 4
	snapTagRA      = 5
	snapTagNA      = 6
	snapTagReader  = 7
	snapTagPredict = 8

	// maxSnapSection bounds one section's payload so a hostile length
	// prefix cannot demand an arbitrary allocation. snapChunk is where
	// the encoder cuts the repeatable sections; since it only cuts at
	// item boundaries, a section never exceeds snapChunk plus one item
	// (at most a threads² dedup mask, ≤ 1 MiB at the thread limit) —
	// far below the decoder's hard cap, so every encodable state is
	// decodable.
	maxSnapSection = 1 << 26
	snapChunk      = 1 << 20
)

// Snapshot is a decoded checkpoint: the restored monitor plus the
// optional trace-reader continuation that was saved with it. Exactly one
// of Monitor or Pipeline may be called, once — both hand over the same
// underlying restored state.
type Snapshot struct {
	hdr      Header
	m        *Monitor
	rck      *ReaderCheckpoint
	filtered bool
}

// Header returns the thread count and location declarations the snapshot
// was taken over.
func (s *Snapshot) Header() Header { return s.hdr }

// StaticFiltered reports whether the checkpointed run had a static
// pre-filter installed. The mask itself is configuration and is not
// serialised, so a resume that does not reinstall one runs unfiltered —
// callers (racemon) use this flag to warn about the mismatch instead of
// silently dropping the filter. Version-1 snapshots predate the flag
// and report false.
func (s *Snapshot) StaticFiltered() bool { return s.filtered }

// Reader returns the trace-reader continuation stored in the snapshot,
// if any (ok=false when the checkpoint was not taken mid-ingestion).
func (s *Snapshot) Reader() (ReaderCheckpoint, bool) {
	if s.rck == nil {
		return ReaderCheckpoint{}, false
	}
	return *s.rck, true
}

// take hands over the restored monitor exactly once.
func (s *Snapshot) take() *Monitor {
	if s.m == nil {
		panic("monitor: snapshot already consumed (Monitor/Pipeline may be called once)")
	}
	m := s.m
	s.m = nil
	return m
}

// Monitor returns the restored sequential monitor, ready to consume the
// remainder of the stream. Single use; see Pipeline for the sharded
// continuation.
func (s *Snapshot) Monitor() *Monitor { return s.take() }

// Pipeline resumes the checkpoint as a parallel pipeline: the restored
// synchronisation state becomes the front-end and every location's race
// state is routed to the back-end owning it under cfg.Shards — the shard
// count (and batch size, queue depth) need not match whatever produced
// the snapshot. A zero GC configuration in cfg means "continue with the
// snapshot's recorded GC state" (interval, adaptive bounds, and the
// position of the next sweep — what same-config resume parity needs);
// a nonzero GCInterval or AdaptiveGCMax overrides it, which is still
// report-preserving. Single use, like Monitor.
func (s *Snapshot) Pipeline(cfg PipelineConfig) *Pipeline {
	m := s.take()
	cfg = cfg.withDefaults()
	applyGC(m, cfg)
	return newPipelineFrom(m, cfg)
}

// Restore decodes a snapshot and returns the restored sequential
// monitor — the inverse of Monitor.Snapshot. The monitor resumes with
// the GC configuration the snapshot recorded; callers may override it
// with SetGCInterval/SetAdaptiveGC (the report set is identical under
// any interval schedule, only retention telemetry changes).
func Restore(r io.Reader) (*Monitor, error) {
	s, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return s.Monitor(), nil
}

// Snapshot serialises the monitor's complete live state to w. The
// monitor remains usable; a Restore of the written bytes continues the
// stream with reports and RAStats byte-identical to this monitor's.
func (m *Monitor) Snapshot(w io.Writer) error {
	return snapshotTo(w, m, m.naAt, nil, m.staticSkip != nil)
}

// SnapshotWithReader is Snapshot plus a trace-reader continuation, for
// checkpoints taken mid-ingestion of a wire-format trace: the restored
// side can seek the trace to ck.Offset (TraceReader.Resume) instead of
// re-decoding the consumed prefix.
func (m *Monitor) SnapshotWithReader(w io.Writer, ck ReaderCheckpoint) error {
	return snapshotTo(w, m, m.naAt, &ck, m.staticSkip != nil)
}

// naAt is the sequential monitor's location-state accessor (the pipeline
// supplies its own, routing to the owning back-end).
func (m *Monitor) naAt(l int32) *naState { return &m.ck.na[l] }

// ---- Encoder ----

// snapWriter frames sections: each is built into the scratch buffer and
// emitted as tag + length + payload.
type snapWriter struct {
	w   *bufio.Writer
	buf []byte
}

func (sw *snapWriter) uvarint(v uint64) { sw.buf = appendUvarint(sw.buf, v) }
func (sw *snapWriter) varint(v int64)   { sw.buf = appendVarint(sw.buf, v) }
func (sw *snapWriter) bytes(p []byte)   { sw.buf = append(sw.buf, p...) }
func (sw *snapWriter) byte(b byte)      { sw.buf = append(sw.buf, b) }
func (sw *snapWriter) clock(vc []uint64) {
	for _, v := range vc {
		sw.uvarint(v)
	}
}

// bitset appends ⌈len(bs)/8⌉ bytes, bit i = bs[i] (nil encodes as all
// zeros over n bits).
func (sw *snapWriter) bitset(bs []bool, n int) {
	for i := 0; i < n; i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < n; j++ {
			if bs != nil && bs[i+j] {
				b |= 1 << j
			}
		}
		sw.byte(b)
	}
}

func (sw *snapWriter) section(tag byte) {
	sw.w.WriteByte(tag)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(sw.buf)))
	sw.w.Write(tmp[:n])
	sw.w.Write(sw.buf)
	sw.buf = sw.buf[:0]
}

// chunk flushes the buffer as one section of the (repeatable) tag once
// it exceeds the chunk size — called at item boundaries only, so items
// never straddle sections.
func (sw *snapWriter) chunk(tag byte) {
	if len(sw.buf) >= snapChunk {
		sw.section(tag)
	}
}

// snapshotTo writes one snapshot of the sync state in m and the
// per-location race state reachable through naAt (the sequential
// monitor's own array, or the pipeline's sharded back-ends). filtered
// records whether a static pre-filter was active — passed explicitly
// because the pipeline keeps its mask on the Pipeline, not the
// front-end, and a filtered sequential monitor and a filtered pipeline
// must snapshot byte-identically.
func snapshotTo(w io.Writer, m *Monitor, naAt func(int32) *naState, rck *ReaderCheckpoint, filtered bool) error {
	hdr := Header{Threads: m.nthreads, Decls: m.decls}
	if err := validateHeader(hdr); err != nil {
		return fmt.Errorf("monitor: snapshot: %w", err)
	}
	if rck != nil {
		if err := rck.validate(hdr); err != nil {
			return fmt.Errorf("monitor: snapshot: %w", err)
		}
	}
	start := time.Now()
	cw := &countingWriter{w: w}
	sw := &snapWriter{w: bufio.NewWriter(cw)}
	sw.w.WriteString(snapMagic)
	sw.w.WriteByte(snapVersion)

	// header
	sw.uvarint(uint64(hdr.Threads))
	sw.uvarint(uint64(len(hdr.Decls)))
	for _, d := range hdr.Decls {
		sw.uvarint(uint64(len(d.Name)))
		sw.bytes([]byte(d.Name))
		sw.byte(byte(d.Kind))
	}
	sw.section(snapTagHeader)

	// sync
	sw.uvarint(m.events)
	sw.uvarint(m.gcEvery)
	sw.uvarint(m.nextGC)
	sw.uvarint(m.adaptMin)
	sw.uvarint(m.adaptMax)
	sw.uvarint(uint64(m.raPeak))
	sw.uvarint(m.raCollected)
	sw.bitset(m.halted, m.nthreads)
	sw.section(snapTagSync)

	// clocks
	for _, c := range m.clocks {
		sw.clock(c)
	}
	sw.clock(m.minClock)
	sw.section(snapTagClocks)

	// atomic released clocks
	for l, d := range m.decls {
		if d.Kind == prog.Atomic {
			sw.chunk(snapTagAtomic)
			sw.clock(m.at[l])
		}
	}
	sw.section(snapTagAtomic)

	// live RA messages, sorted per location for canonical bytes
	var keys []tsKey
	for l, d := range m.decls {
		if d.Kind != prog.ReleaseAcquire {
			continue
		}
		mm := m.ra[l]
		keys = keys[:0]
		for k := range mm {
			keys = append(keys, k)
		}
		slices.SortFunc(keys, func(a, b tsKey) int {
			if a.num != b.num {
				if a.num < b.num {
					return -1
				}
				return 1
			}
			if a.den != b.den {
				if a.den < b.den {
					return -1
				}
				return 1
			}
			return 0
		})
		sw.chunk(snapTagRA)
		sw.uvarint(uint64(len(keys)))
		for _, k := range keys {
			sw.chunk(snapTagRA)
			msg := mm[k]
			sw.varint(k.num)
			sw.uvarint(uint64(k.den))
			sw.uvarint(uint64(msg.writer))
			sw.clock(msg.vc)
		}
	}
	sw.section(snapTagRA)

	// nonatomic last-access state
	for l, d := range m.decls {
		if d.Kind != prog.NonAtomic {
			continue
		}
		sw.chunk(snapTagNA)
		ls := naAt(int32(l))
		var flags byte
		if ls.wClean {
			flags |= 1
		}
		if ls.rClean {
			flags |= 2
		}
		if ls.reported != nil {
			flags |= 4
		}
		sw.byte(flags)
		sw.varint(int64(ls.wT))
		sw.uvarint(ls.wC)
		sw.varint(int64(ls.rT))
		sw.uvarint(ls.rC)
		sw.varint(int64(ls.lastT))
		if ls.wT == escalated {
			sw.clock(ls.writes)
		}
		if ls.rT == escalated {
			sw.clock(ls.reads)
		}
		if ls.reported != nil {
			sw.bytes(ls.reported)
		}
	}
	sw.section(snapTagNA)

	// predict: emitted only when there is something non-default to
	// record, so default-predicate unfiltered snapshots stay bytewise
	// minimal (and a version-1 decoder's view of the state is complete).
	if m.pred != PredHB || filtered {
		sw.byte(byte(m.pred))
		sw.uvarint(m.windowK)
		var pf byte
		if filtered {
			pf = 1
		}
		sw.byte(pf)
		if m.win != nil {
			for l, d := range m.decls {
				if d.Kind != prog.NonAtomic {
					continue
				}
				sw.chunk(snapTagPredict)
				wl := &m.win.locs[l]
				live := wl.entries[wl.head:]
				sw.uvarint(uint64(len(live)))
				for _, e := range live {
					sw.chunk(snapTagPredict)
					sw.uvarint(e.gidx)
					sw.uvarint(e.epoch)
					sw.uvarint(uint64(e.t))
					wb := byte(0)
					if e.write {
						wb = 1
					}
					sw.byte(wb)
				}
				if wl.reported != nil {
					sw.byte(1)
					sw.bytes(wl.reported)
				} else {
					sw.byte(0)
				}
			}
			sw.uvarint(uint64(m.win.peak))
			sw.uvarint(m.win.pruned)
		}
		sw.section(snapTagPredict)
	}

	if rck != nil {
		sw.uvarint(uint64(rck.Offset))
		v2 := byte(0)
		if rck.V2 {
			v2 = 1
		}
		sw.byte(v2)
		sw.varint(int64(rck.PrevThread))
		if rck.V2 {
			for _, v := range rck.PrevLoc {
				sw.varint(int64(v))
			}
			for _, v := range rck.PrevNum {
				sw.varint(v)
			}
		}
		sw.bitset(rck.Halted, hdr.Threads)
		sw.uvarint(uint64(len(rck.Pending)))
		for _, e := range rck.Pending {
			sw.byte(byte(e.Kind))
			sw.uvarint(uint64(e.Thread))
			if e.Kind != KindHalt {
				sw.uvarint(uint64(e.Loc))
				if e.Kind == ReadRA || e.Kind == WriteRA {
					num, den := e.Time.Fraction()
					sw.varint(num)
					sw.uvarint(uint64(den))
				}
			}
		}
		sw.section(snapTagReader)
	}

	sw.section(snapTagEnd)
	if err := sw.w.Flush(); err != nil {
		return err
	}
	// Checkpoint telemetry: the encoded size IS the live state, so the
	// size histogram doubles as a boundedness measurement over time.
	m.mo.snapEncBytes.Observe(cw.n)
	m.mo.snapEncNs.Observe(uint64(time.Since(start)))
	return nil
}

// countingWriter / countingReader meter the snapshot codec's byte
// traffic for the monitor.snapshot.* histograms.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// validate checks a reader continuation against the snapshot header
// before it is encoded (the decoder re-checks the same constraints, so
// encoder and decoder accept exactly the same continuations).
func (ck *ReaderCheckpoint) validate(hdr Header) error {
	if ck.Offset < 0 {
		return fmt.Errorf("reader checkpoint: negative offset %d", ck.Offset)
	}
	if ck.V2 {
		if len(ck.PrevLoc) != hdr.Threads {
			return fmt.Errorf("reader checkpoint: prevLoc length %d, want %d threads", len(ck.PrevLoc), hdr.Threads)
		}
		if len(ck.PrevNum) != len(hdr.Decls) {
			return fmt.Errorf("reader checkpoint: prevNum length %d, want %d locations", len(ck.PrevNum), len(hdr.Decls))
		}
		for t, l := range ck.PrevLoc {
			if l < 0 || (int(l) >= len(hdr.Decls) && l != 0) {
				return fmt.Errorf("reader checkpoint: prevLoc[%d] = %d out of range", t, l)
			}
		}
	} else if len(ck.Pending) > 0 {
		return fmt.Errorf("reader checkpoint: pending events on a non-v2 trace")
	}
	if ck.PrevThread < 0 || int(ck.PrevThread) >= hdr.Threads {
		return fmt.Errorf("reader checkpoint: prevThread %d out of range [0,%d)", ck.PrevThread, hdr.Threads)
	}
	if ck.Halted != nil && len(ck.Halted) != hdr.Threads {
		return fmt.Errorf("reader checkpoint: halted length %d, want %d threads", len(ck.Halted), hdr.Threads)
	}
	// Halted is the DECODE-position halt set: the whole current frame has
	// been decoded, so it already includes halts still sitting in Pending
	// (which take effect at their position within Pending, not before
	// it). Unwind those to recover the delivery-position set, requiring
	// each pending halt to be reflected — the two views must be
	// consistent.
	var halted []bool
	if ck.Halted != nil {
		halted = slices.Clone(ck.Halted)
	}
	for _, e := range ck.Pending {
		if e.Kind != KindHalt {
			continue
		}
		if int(e.Thread) >= hdr.Threads || e.Thread < 0 {
			return fmt.Errorf("reader checkpoint: pending halt of out-of-range thread %d", e.Thread)
		}
		if halted == nil || !halted[e.Thread] {
			return fmt.Errorf("reader checkpoint: pending halt of thread %d not reflected in the halted set (or halted twice)", e.Thread)
		}
		halted[e.Thread] = false
	}
	// Replay delivery: the halt promise must hold event by event — no
	// pending access of a thread halted before the checkpoint or by an
	// earlier pending halt.
	for _, e := range ck.Pending {
		if err := validateEvent(hdr, e); err != nil {
			return fmt.Errorf("reader checkpoint: pending: %w", err)
		}
		if e.Kind != KindHalt && halted != nil && halted[e.Thread] {
			return fmt.Errorf("reader checkpoint: pending event of halted thread %d", e.Thread)
		}
		if e.Kind == KindHalt {
			if halted == nil {
				halted = make([]bool, hdr.Threads)
			}
			halted[e.Thread] = true
		}
	}
	return nil
}

// ---- Decoder ----

// snapCursor decodes one section payload with bounds checking; every
// read error names the section.
type snapCursor struct {
	p    []byte
	pos  int
	what string
}

func (c *snapCursor) errf(format string, args ...any) error {
	return fmt.Errorf("monitor: snapshot %s section: %s", c.what, fmt.Sprintf(format, args...))
}

func (c *snapCursor) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(c.p[c.pos:])
	if n <= 0 {
		return 0, c.errf("bad %s uvarint", field)
	}
	c.pos += n
	return v, nil
}

func (c *snapCursor) varint(field string) (int64, error) {
	v, n := binary.Varint(c.p[c.pos:])
	if n <= 0 {
		return 0, c.errf("bad %s varint", field)
	}
	c.pos += n
	return v, nil
}

func (c *snapCursor) byte(field string) (byte, error) {
	if c.pos >= len(c.p) {
		return 0, c.errf("truncated %s", field)
	}
	b := c.p[c.pos]
	c.pos++
	return b, nil
}

func (c *snapCursor) take(n int, field string) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.p) {
		return nil, c.errf("truncated %s", field)
	}
	b := c.p[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// clock decodes exactly len(dst) uvarints into dst — any shortfall is a
// clock-count mismatch error.
func (c *snapCursor) clock(dst []uint64, field string) error {
	for i := range dst {
		v, err := c.uvarint(field)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

func (c *snapCursor) bitset(n int, field string) ([]bool, error) {
	raw, err := c.take((n+7)/8, field)
	if err != nil {
		return nil, err
	}
	bs := make([]bool, n)
	any := false
	for i := range bs {
		if raw[i/8]&(1<<(i%8)) != 0 {
			bs[i] = true
			any = true
		}
	}
	// Bits beyond n must be zero (canonical encoding).
	for i := n; i < len(raw)*8; i++ {
		if raw[i/8]&(1<<(i%8)) != 0 {
			return nil, c.errf("%s bitset has bits beyond %d entries", field, n)
		}
	}
	if !any {
		return nil, nil
	}
	return bs, nil
}

func (c *snapCursor) done() error {
	if c.pos != len(c.p) {
		return c.errf("%d trailing bytes", len(c.p)-c.pos)
	}
	return nil
}

// snapDecoder walks the framed sections in order.
type snapDecoder struct {
	br *bufio.Reader
}

// next reads the next section frame and returns its tag and a cursor
// over the payload.
func (d *snapDecoder) next() (byte, *snapCursor, error) {
	tag, err := d.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("monitor: snapshot: section tag: %w", err)
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("monitor: snapshot: section length: %w", err)
	}
	if n > maxSnapSection {
		return 0, nil, fmt.Errorf("monitor: snapshot: section payload %d exceeds the limit %d", n, maxSnapSection)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(d.br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("monitor: snapshot: section payload: %w", err)
	}
	return tag, &snapCursor{p: p}, nil
}

// expect reads the next section and requires the given tag.
func (d *snapDecoder) expect(tag byte, what string) (*snapCursor, error) {
	got, c, err := d.next()
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("monitor: snapshot: want %s section (tag %d), got tag %d", what, tag, got)
	}
	c.what = what
	return c, nil
}

// more advances to the next chunk of a repeatable section when the
// current cursor has been fully consumed with items still owed (see the
// chunking note in the package comment).
func (d *snapDecoder) more(c **snapCursor, tag byte, what string) error {
	if (*c).pos < len((*c).p) {
		return nil
	}
	nc, err := d.expect(tag, what)
	if err != nil {
		return err
	}
	*c = nc
	return nil
}

// ReadSnapshot decodes and validates a snapshot written by
// Monitor.Snapshot / Pipeline.Snapshot (and their *WithReader forms).
// Malformed input produces an error, never a panic, and never a monitor
// that a subsequent Step could crash.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	start := time.Now()
	cr := &countingReader{r: r}
	d := &snapDecoder{br: bufio.NewReader(cr)}
	var magic [len(snapMagic) + 1]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("monitor: snapshot header: %w", err)
	}
	if string(magic[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("monitor: not a snapshot (bad magic %q)", magic[:len(snapMagic)])
	}
	ver := magic[len(snapMagic)]
	if ver < snapVersionMin || ver > snapVersion {
		return nil, fmt.Errorf("monitor: snapshot: unsupported version %d (accept %d–%d)", ver, snapVersionMin, snapVersion)
	}

	hdr, err := d.decodeHeader()
	if err != nil {
		return nil, err
	}
	m := New(hdr.Threads, hdr.Decls)
	if err := d.decodeSync(m); err != nil {
		return nil, err
	}
	if err := d.decodeClocks(m); err != nil {
		return nil, err
	}
	if err := d.decodeAtomics(m); err != nil {
		return nil, err
	}
	if err := d.decodeRA(m); err != nil {
		return nil, err
	}
	if err := d.decodeNA(m); err != nil {
		return nil, err
	}
	s := &Snapshot{hdr: hdr, m: m}
	tag, c, err := d.next()
	if err != nil {
		return nil, err
	}
	if tag == snapTagPredict && ver >= 2 {
		c.what = "predict"
		filtered, err := d.decodePredict(c, m)
		if err != nil {
			return nil, err
		}
		s.filtered = filtered
		tag, c, err = d.next()
		if err != nil {
			return nil, err
		}
	}
	if tag == snapTagReader {
		c.what = "reader"
		rck, err := decodeReader(c, hdr)
		if err != nil {
			return nil, err
		}
		s.rck = rck
		tag, c, err = d.next()
		if err != nil {
			return nil, err
		}
	}
	if tag != snapTagEnd {
		return nil, fmt.Errorf("monitor: snapshot: want end section (tag %d), got tag %d", snapTagEnd, tag)
	}
	c.what = "end"
	if err := c.done(); err != nil {
		return nil, err
	}
	// Record the restore cost in the restored monitor's own registry
	// (the byte count may include bufio readahead past the end section
	// when the stream continues — telemetry, not framing).
	m.mo.snapDecBytes.Observe(cr.n)
	m.mo.snapDecNs.Observe(uint64(time.Since(start)))
	return s, nil
}

func (d *snapDecoder) decodeHeader() (Header, error) {
	c, err := d.expect(snapTagHeader, "header")
	if err != nil {
		return Header{}, err
	}
	threads, err := c.uvarint("thread count")
	if err != nil {
		return Header{}, err
	}
	if threads > maxWireThreads {
		return Header{}, c.errf("thread count %d exceeds the limit %d", threads, maxWireThreads)
	}
	nlocs, err := c.uvarint("location count")
	if err != nil {
		return Header{}, err
	}
	if nlocs > maxWireLocs {
		return Header{}, c.errf("location count %d exceeds the limit %d", nlocs, maxWireLocs)
	}
	hdr := Header{Threads: int(threads)}
	for i := uint64(0); i < nlocs; i++ {
		nameLen, err := c.uvarint("location name length")
		if err != nil {
			return Header{}, err
		}
		if nameLen > maxWireName {
			return Header{}, c.errf("location name length %d exceeds the limit %d", nameLen, maxWireName)
		}
		name, err := c.take(int(nameLen), "location name")
		if err != nil {
			return Header{}, err
		}
		kind, err := c.byte("location kind")
		if err != nil {
			return Header{}, err
		}
		hdr.Decls = append(hdr.Decls, LocDecl{Name: prog.Loc(name), Kind: prog.LocKind(kind)})
	}
	if err := c.done(); err != nil {
		return Header{}, err
	}
	if err := validateHeader(hdr); err != nil {
		return Header{}, err
	}
	return hdr, nil
}

func (d *snapDecoder) decodeSync(m *Monitor) error {
	c, err := d.expect(snapTagSync, "sync")
	if err != nil {
		return err
	}
	if m.events, err = c.uvarint("events"); err != nil {
		return err
	}
	if m.gcEvery, err = c.uvarint("gcEvery"); err != nil {
		return err
	}
	if m.gcEvery == 0 {
		return c.errf("gcEvery must be ≥ 1")
	}
	if m.nextGC, err = c.uvarint("nextGC"); err != nil {
		return err
	}
	if m.adaptMin, err = c.uvarint("adaptMin"); err != nil {
		return err
	}
	if m.adaptMax, err = c.uvarint("adaptMax"); err != nil {
		return err
	}
	if m.adaptMax > 0 && (m.adaptMin == 0 || m.adaptMin > m.adaptMax ||
		m.gcEvery < m.adaptMin || m.gcEvery > m.adaptMax) {
		return c.errf("adaptive bounds [%d,%d] do not contain interval %d", m.adaptMin, m.adaptMax, m.gcEvery)
	}
	if m.adaptMax == 0 && m.adaptMin != 0 {
		return c.errf("adaptMin %d without adaptMax", m.adaptMin)
	}
	peak, err := c.uvarint("raPeak")
	if err != nil {
		return err
	}
	if peak > uint64(math.MaxInt) {
		return c.errf("raPeak %d out of range", peak)
	}
	m.raPeak = int(peak)
	if m.raCollected, err = c.uvarint("raCollected"); err != nil {
		return err
	}
	halted, err := c.bitset(m.nthreads, "halted")
	if err != nil {
		return err
	}
	if halted != nil {
		copy(m.halted, halted)
	}
	return c.done()
}

func (d *snapDecoder) decodeClocks(m *Monitor) error {
	c, err := d.expect(snapTagClocks, "clocks")
	if err != nil {
		return err
	}
	for _, row := range m.clocks {
		if err := c.clock(row, "thread clock"); err != nil {
			return err
		}
	}
	if err := c.clock(m.minClock, "minimum frontier"); err != nil {
		return err
	}
	return c.done()
}

func (d *snapDecoder) decodeAtomics(m *Monitor) error {
	c, err := d.expect(snapTagAtomic, "atomic")
	if err != nil {
		return err
	}
	for l, decl := range m.decls {
		if decl.Kind != prog.Atomic {
			continue
		}
		if err := d.more(&c, snapTagAtomic, "atomic"); err != nil {
			return err
		}
		if err := c.clock(m.at[l], "released clock"); err != nil {
			return err
		}
	}
	return c.done()
}

func (d *snapDecoder) decodeRA(m *Monitor) error {
	c, err := d.expect(snapTagRA, "ra")
	if err != nil {
		return err
	}
	for l, decl := range m.decls {
		if decl.Kind != prog.ReleaseAcquire {
			continue
		}
		if err := d.more(&c, snapTagRA, "ra"); err != nil {
			return err
		}
		count, err := c.uvarint("message count")
		if err != nil {
			return err
		}
		// No allocation is driven by the count itself: the map below
		// grows only with messages actually decoded, and a hostile count
		// runs out of section bytes (an error) rather than memory.
		mm := m.ra[l]
		for i := uint64(0); i < count; i++ {
			if err := d.more(&c, snapTagRA, "ra"); err != nil {
				return err
			}
			num, err := c.varint("message numerator")
			if err != nil {
				return err
			}
			den, err := c.uvarint("message denominator")
			if err != nil {
				return err
			}
			if den == 0 || den > uint64(math.MaxInt64) {
				return c.errf("message denominator %d out of range", den)
			}
			writer, err := c.uvarint("message writer")
			if err != nil {
				return err
			}
			if writer >= uint64(m.nthreads) {
				return c.errf("message writer %d out of range [0,%d)", writer, m.nthreads)
			}
			vc := make([]uint64, m.nthreads)
			if err := c.clock(vc, "message clock"); err != nil {
				return err
			}
			k := tsKey{num: num, den: int64(den)}
			if _, dup := mm[k]; dup {
				return c.errf("duplicate message timestamp %d/%d", num, den)
			}
			mm[k] = raMsg{vc: vc, writer: int32(writer)}
		}
		m.raLiveLoc[l] = len(mm)
		m.raLive += len(mm)
	}
	return c.done()
}

// epochThread validates an epoch thread field: the two sentinels or a
// real thread index.
func (c *snapCursor) epochThread(field string, nthreads int) (int32, error) {
	v, err := c.varint(field)
	if err != nil {
		return 0, err
	}
	if v != int64(noEpoch) && v != int64(escalated) && (v < 0 || v >= int64(nthreads)) {
		return 0, c.errf("%s %d out of range", field, v)
	}
	return int32(v), nil
}

func (d *snapDecoder) decodeNA(m *Monitor) error {
	c, err := d.expect(snapTagNA, "na")
	if err != nil {
		return err
	}
	races := 0
	for l, decl := range m.decls {
		if decl.Kind != prog.NonAtomic {
			continue
		}
		if err := d.more(&c, snapTagNA, "na"); err != nil {
			return err
		}
		ls := &m.ck.na[l]
		flags, err := c.byte("flags")
		if err != nil {
			return err
		}
		if flags&^byte(7) != 0 {
			return c.errf("unknown flag bits %#x", flags)
		}
		ls.wClean = flags&1 != 0
		ls.rClean = flags&2 != 0
		if ls.wT, err = c.epochThread("write epoch thread", m.nthreads); err != nil {
			return err
		}
		if ls.wC, err = c.uvarint("write epoch clock"); err != nil {
			return err
		}
		if ls.rT, err = c.epochThread("read epoch thread", m.nthreads); err != nil {
			return err
		}
		if ls.rC, err = c.uvarint("read epoch clock"); err != nil {
			return err
		}
		lastT, err := c.varint("last thread")
		if err != nil {
			return err
		}
		if lastT < -1 || lastT >= int64(m.nthreads) {
			return c.errf("last thread %d out of range", lastT)
		}
		ls.lastT = int32(lastT)
		if ls.wT == escalated {
			ls.writes = make([]uint64, m.nthreads)
			if err := c.clock(ls.writes, "write vector"); err != nil {
				return err
			}
			m.ck.escalatedSides++
		}
		if ls.rT == escalated {
			ls.reads = make([]uint64, m.nthreads)
			if err := c.clock(ls.reads, "read vector"); err != nil {
				return err
			}
			m.ck.escalatedSides++
		}
		if flags&4 != 0 {
			raw, err := c.take(m.nthreads*m.nthreads, "dedup masks")
			if err != nil {
				return err
			}
			ls.reported = make([]uint8, len(raw))
			for i, b := range raw {
				if b > 15 {
					return c.errf("dedup mask byte %#x has unknown bits", b)
				}
				ls.reported[i] = b
				races += bits.OnesCount8(b)
			}
		}
	}
	m.ck.races = races
	return c.done()
}

// decodePredict restores the predicate configuration and (under
// PredShort) the per-location candidate windows. Returns whether the
// checkpointed run had a static pre-filter active. The section is only
// written when something is non-default, so a default payload is
// rejected as non-canonical.
func (d *snapDecoder) decodePredict(c *snapCursor, m *Monitor) (bool, error) {
	predB, err := c.byte("predicate")
	if err != nil {
		return false, err
	}
	if predB > byte(PredShort) {
		return false, c.errf("unknown predicate %d", predB)
	}
	pred := Predicate(predB)
	k, err := c.uvarint("window k")
	if err != nil {
		return false, err
	}
	if (pred == PredShort) != (k > 0) {
		return false, c.errf("window k %d inconsistent with predicate %s", k, pred)
	}
	pf, err := c.byte("filter flag")
	if err != nil {
		return false, err
	}
	if pf > 1 {
		return false, c.errf("filter flag %d not 0 or 1", pf)
	}
	if pred == PredHB && pf == 0 {
		return false, c.errf("section present with default predicate and no filter")
	}
	m.pred = pred
	m.windowK = k
	if pred != PredHB {
		m.ensurePredCells()
	}
	if pred != PredShort {
		return pf == 1, c.done()
	}
	w := newWindow(m.nthreads, len(m.decls), k)
	m.win = w
	races := 0
	for l, decl := range m.decls {
		if decl.Kind != prog.NonAtomic {
			continue
		}
		if err := d.more(&c, snapTagPredict, "predict"); err != nil {
			return false, err
		}
		count, err := c.uvarint("window entry count")
		if err != nil {
			return false, err
		}
		wl := &w.locs[l]
		var prevGidx uint64
		for i := uint64(0); i < count; i++ {
			if err := d.more(&c, snapTagPredict, "predict"); err != nil {
				return false, err
			}
			gidx, err := c.uvarint("entry index")
			if err != nil {
				return false, err
			}
			if gidx < prevGidx {
				return false, c.errf("entry index %d out of FIFO order (previous %d)", gidx, prevGidx)
			}
			if gidx > m.events {
				return false, c.errf("entry index %d beyond event count %d", gidx, m.events)
			}
			prevGidx = gidx
			epoch, err := c.uvarint("entry epoch")
			if err != nil {
				return false, err
			}
			thread, err := c.uvarint("entry thread")
			if err != nil {
				return false, err
			}
			if thread >= uint64(m.nthreads) {
				return false, c.errf("entry thread %d out of range [0,%d)", thread, m.nthreads)
			}
			wb, err := c.byte("entry write flag")
			if err != nil {
				return false, err
			}
			if wb > 1 {
				return false, c.errf("entry write flag %d not 0 or 1", wb)
			}
			wl.entries = append(wl.entries, winEntry{
				gidx: gidx, epoch: epoch, t: int32(thread), write: wb == 1,
			})
		}
		w.live += len(wl.entries)
		mb, err := c.byte("mask flag")
		if err != nil {
			return false, err
		}
		if mb > 1 {
			return false, c.errf("mask flag %d not 0 or 1", mb)
		}
		if mb == 1 {
			raw, err := c.take(m.nthreads*m.nthreads, "window dedup masks")
			if err != nil {
				return false, err
			}
			wl.reported = make([]uint8, len(raw))
			for i, b := range raw {
				if b > 15 {
					return false, c.errf("window dedup mask byte %#x has unknown bits", b)
				}
				wl.reported[i] = b
				races += bits.OnesCount8(b)
			}
		}
	}
	w.races = races
	peak, err := c.uvarint("window peak")
	if err != nil {
		return false, err
	}
	if peak > uint64(math.MaxInt) {
		return false, c.errf("window peak %d out of range", peak)
	}
	if int(peak) < w.live {
		return false, c.errf("window peak %d below live count %d", peak, w.live)
	}
	w.peak = int(peak)
	if w.pruned, err = c.uvarint("window pruned"); err != nil {
		return false, err
	}
	return pf == 1, c.done()
}

func decodeReader(c *snapCursor, hdr Header) (*ReaderCheckpoint, error) {
	off, err := c.uvarint("offset")
	if err != nil {
		return nil, err
	}
	if off > uint64(math.MaxInt64) {
		return nil, c.errf("offset %d out of range", off)
	}
	v2b, err := c.byte("v2 flag")
	if err != nil {
		return nil, err
	}
	if v2b > 1 {
		return nil, c.errf("v2 flag %d not 0 or 1", v2b)
	}
	rck := &ReaderCheckpoint{Offset: int64(off), V2: v2b == 1}
	prevThread, err := c.varint("prevThread")
	if err != nil {
		return nil, err
	}
	if prevThread < 0 || prevThread >= int64(hdr.Threads) {
		return nil, c.errf("prevThread %d out of range [0,%d)", prevThread, hdr.Threads)
	}
	rck.PrevThread = int32(prevThread)
	if rck.V2 {
		rck.PrevLoc = make([]int32, hdr.Threads)
		for t := range rck.PrevLoc {
			v, err := c.varint("prevLoc")
			if err != nil {
				return nil, err
			}
			if v < 0 || (v >= int64(len(hdr.Decls)) && v != 0) {
				return nil, c.errf("prevLoc[%d] = %d out of range", t, v)
			}
			rck.PrevLoc[t] = int32(v)
		}
		rck.PrevNum = make([]int64, len(hdr.Decls))
		for l := range rck.PrevNum {
			if rck.PrevNum[l], err = c.varint("prevNum"); err != nil {
				return nil, err
			}
		}
	}
	if rck.Halted, err = c.bitset(hdr.Threads, "halted"); err != nil {
		return nil, err
	}
	count, err := c.uvarint("pending count")
	if err != nil {
		return nil, err
	}
	if count > uint64(len(c.p)-c.pos) || count > maxFrameEvents {
		return nil, c.errf("pending count %d exceeds the payload", count)
	}
	for i := uint64(0); i < count; i++ {
		kb, err := c.byte("pending kind")
		if err != nil {
			return nil, err
		}
		e := Event{Kind: Kind(kb)}
		thread, err := c.uvarint("pending thread")
		if err != nil {
			return nil, err
		}
		if thread > uint64(math.MaxInt32) {
			return nil, c.errf("pending thread %d out of range", thread)
		}
		e.Thread = int32(thread)
		if e.Kind != KindHalt {
			loc, err := c.uvarint("pending location")
			if err != nil {
				return nil, err
			}
			if loc > uint64(math.MaxInt32) {
				return nil, c.errf("pending location %d out of range", loc)
			}
			e.Loc = int32(loc)
			if e.Kind == ReadRA || e.Kind == WriteRA {
				num, err := c.varint("pending timestamp numerator")
				if err != nil {
					return nil, err
				}
				den, err := c.uvarint("pending timestamp denominator")
				if err != nil {
					return nil, err
				}
				if den == 0 || den > uint64(math.MaxInt64) {
					return nil, c.errf("pending timestamp denominator %d out of range", den)
				}
				e.Time = ts.New(num, int64(den))
			}
		}
		rck.Pending = append(rck.Pending, e)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	// Shared validation with the encoder: bounds, kind-versus-declaration
	// consistency, and the halt promise over the pending run.
	if err := rck.validate(hdr); err != nil {
		return nil, fmt.Errorf("monitor: snapshot reader section: %w", err)
	}
	return rck, nil
}

// ---- Convenience ----

// SnapshotRaces is a debugging aid: the reports a restored monitor would
// produce if the stream ended at the checkpoint.
func SnapshotRaces(r io.Reader) ([]race.Report, error) {
	m, err := Restore(r)
	if err != nil {
		return nil, err
	}
	return m.Reports(), nil
}
