package localdrf

import (
	"io"

	"localdrf/internal/axiomatic"
	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/staticrace"
)

// ---- Programs ----

// Val is the value domain; all locations start at 0.
type Val = prog.Val

// Loc names a memory location; atomicity is declared per location.
type Loc = prog.Loc

// Reg names a thread-local register.
type Reg = prog.Reg

// Program is a multi-threaded program over declared locations.
type Program = prog.Program

// Builder assembles programs fluently; see NewProgram.
type Builder = prog.Builder

// Operand is a register or immediate instruction operand; build with
// R and I.
type Operand = prog.Operand

// NewProgram starts a program builder:
//
//	p := localdrf.NewProgram("MP").
//	    Vars("x").Atomics("F").
//	    Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
//	    Thread("P1").Load("r0", "F").Load("r1", "x").Done().
//	    MustBuild()
//
// Locations come in three flavours: Vars declares nonatomic locations
// (timestamped histories, racy), Atomics declares the paper's
// sequentially consistent atomics, and RAs declares release-acquire
// atomics — the §10 extension, weaker than SC (store buffering and IRIW
// relaxations are visible) but race-free and sufficient for message
// passing.
func NewProgram(name string) *Builder { return prog.NewProgram(name) }

// R makes a register operand.
func R(r Reg) Operand { return prog.R(r) }

// I makes an immediate operand.
func I(v Val) Operand { return prog.I(v) }

// ParseProgram reads the litmus text format (see internal/prog.Parse for
// the grammar): `var`/`atomic` declarations followed by `thread … end`
// blocks of loads (`r = x`), stores (`x = 1`), register ops (`r := a + b`)
// and branches (`if r goto L`).
func ParseProgram(src string) (*Program, error) { return prog.Parse(src) }

// ---- Operational semantics (§3) ----

// Machine is a machine configuration ⟨S, P⟩ of the operational model:
// histories and frontiers for nonatomic locations, (frontier, value)
// cells for atomic ones.
type Machine = core.Machine

// NewMachine returns the initial configuration M0 of a program (§3.1).
func NewMachine(p *Program) *Machine { return core.NewMachine(p) }

// Outcome is the observable result of one complete execution: final
// registers per thread and final (latest-write) memory.
type Outcome = explore.Outcome

// OutcomeSet is a set of outcomes with subset/equality queries.
type OutcomeSet = explore.Set

// ExploreOptions configures exhaustive exploration: the SC restriction,
// the distinct-state budget, and the engine parallelism.
type ExploreOptions = explore.Options

// Outcomes enumerates every behaviour of p under the full memory model,
// on the parallel exploration engine. The result is deterministic.
func Outcomes(p *Program) (*OutcomeSet, error) {
	return explore.Outcomes(p, explore.Options{})
}

// OutcomesOpt is Outcomes with explicit exploration options.
func OutcomesOpt(p *Program, opt ExploreOptions) (*OutcomeSet, error) {
	return explore.Outcomes(p, opt)
}

// OutcomesSequential is the single-threaded memoised reference
// enumeration (the seed implementation), retained for differential
// testing and benchmarking of the parallel engine. On every terminating
// acyclic state space it produces the same outcome set as Outcomes; on a
// cyclic one it reports explore.ErrCyclicStateSpace, where the
// engine-based Outcomes instead terminates by deduplication and returns
// the outcomes of the reachable halted states.
func OutcomesSequential(p *Program) (*OutcomeSet, error) {
	return explore.OutcomesSequential(p, explore.Options{})
}

// OutcomesSC enumerates the sequentially consistent behaviours only
// (traces with no weak transitions, def. 7).
func OutcomesSC(p *Program) (*OutcomeSet, error) {
	return explore.Outcomes(p, explore.Options{SCOnly: true})
}

// ---- Axiomatic semantics (§6) ----

// OutcomesAxiomatic enumerates behaviours via consistent executions of
// the axiomatic model. By thms. 15/16 it agrees with Outcomes.
func OutcomesAxiomatic(p *Program) (*OutcomeSet, error) {
	return axiomatic.Outcomes(p)
}

// ---- Races and local DRF (§4) ----

// LocSet is a set L of locations, the parameter of local DRF.
type LocSet = race.LocSet

// RaceReport describes a data race found in some trace.
type RaceReport = race.Report

// NewLocSet builds a location set.
func NewLocSet(locs ...Loc) LocSet { return race.NewLocSet(locs...) }

// AllLocs is the L that makes local DRF coincide with global DRF.
func AllLocs(p *Program) LocSet { return race.AllLocs(p) }

// FindRaces reports the distinct data races of p. With scOnly, only
// sequentially consistent traces are searched — the discipline the
// global DRF theorem asks programmers to follow.
func FindRaces(p *Program, scOnly bool) ([]RaceReport, error) {
	return race.FindRaces(p, scOnly, 0)
}

// IsSCRaceFree reports whether p is data-race-free in all SC traces
// (the hypothesis of thm. 14).
func IsSCRaceFree(p *Program) (bool, error) { return race.IsSCRaceFree(p, 0) }

// CheckGlobalDRF verifies thm. 14 on p: if p is SC-race-free, every
// behaviour is sequentially consistent. Returns an error describing the
// failure (including "premise not met" for racy programs).
func CheckGlobalDRF(p *Program) error { return race.CheckGlobalDRF(p, 0) }

// LStable decides def. 12: whether machine state m of program p has no
// in-progress races on L.
func LStable(p *Program, m *Machine, L LocSet) (bool, error) {
	return race.LStable(p, m, L, 8_000_000)
}

// CheckLocalDRFFrom verifies the conclusion of the local DRF theorem
// (thm. 13) from machine state m: L-sequential runs stay L-sequential
// until a data race on L occurs.
func CheckLocalDRFFrom(m *Machine, L LocSet) error {
	return race.CheckLocalDRFFrom(m, L, 8_000_000)
}

// ---- Traces and streaming monitoring ----

// Trace is a finite sequence of machine transitions from the initial
// state (def. 5).
type Trace = explore.Trace

// Traces enumerates every complete trace of p (all traces, or only the
// sequentially consistent ones with scOnly), feeding each to visit;
// enumeration stops early when visit returns false. Exhaustive — litmus
// scale only; for long single schedules use the streaming layer below.
func Traces(p *Program, scOnly bool, visit func(Trace) bool) error {
	return explore.Traces(p, explore.Options{SCOnly: scOnly}, 0, visit)
}

// TraceRaces returns the distinct data races of one trace (defs. 8–10),
// deduplicated by location, thread pair and access kinds — the
// exhaustive per-trace oracle.
func TraceRaces(tr Trace) []RaceReport { return race.Races(tr) }

// MonitorTrace runs the online happens-before race monitor
// (internal/monitor: vector clocks, O(threads) per event worst case)
// over one trace of p and returns the same report set as TraceRaces —
// verified identical on every trace by the differential test suite, but
// in a single streaming pass that scales to millions of events.
func MonitorTrace(p *Program, tr Trace) ([]RaceReport, error) {
	return monitor.NewTable(p).Races(tr)
}

// MonitorTraceReader monitors a raw trace in the wire format of
// internal/monitor (binary or text, self-describing, sniffed
// automatically) from r, in one bounded-memory streaming pass: epochs
// for nonatomic history, windowed GC for release-acquire messages.
// The decoder validates the stream and returns an error on malformed
// input. This is how executions recorded outside this process are
// monitored; cmd/racemon -emit/-trace are the command-line ends of the
// same pipe.
func MonitorTraceReader(r io.Reader) ([]RaceReport, error) {
	return monitor.ReadRaces(r)
}

// ---- Static may-race analysis ----

// StaticReport partitions a program's nonatomic locations into a sound
// may-race set and a statically certified race-free set, with a
// per-location certificate reason and the cross-thread pairs examined.
// Its RaceFree method makes it a certificate for the monitor's static
// pre-filter (MonitorStaticFilter) and for certificate-strengthened
// reorderings (CanReorderCert, DeriveOptimisationCert).
type StaticReport = staticrace.Report

// AnalyzeStatic runs the sound static may-race analysis: a flow-
// sensitive abstract interpretation whose may-race set over-approximates
// the union of race.Races over ALL interleavings (proven differentially
// against the exhaustive oracle on the full corpus). Certified locations
// carry an LDRF certificate: every execution keeps their accesses
// happens-before ordered.
func AnalyzeStatic(p *Program) *StaticReport { return staticrace.Analyze(p) }

// MonitorStaticFilter builds the per-location skip mask that lets a
// Monitor (SetStaticFilter) or Pipeline (PipelineConfig.StaticFilter)
// bypass race-checker work for statically certified locations — reports
// and retention statistics are byte-identical, the certified locations'
// checks are simply free. Returns nil when the certificate proves
// nothing.
func MonitorStaticFilter(p *Program, rep *StaticReport) []bool {
	return monitor.StaticFilter(monitor.NewTable(p).Decls(), rep.RaceFree)
}

// ---- Litmus catalogue ----

// LitmusTest is a named program with outcome predicates and the model's
// verdicts; the catalogue includes the paper's examples 1–3.
type LitmusTest = litmus.Test

// LitmusVerdict is the model's answer for one outcome predicate.
type LitmusVerdict = litmus.Verdict

// Litmus verdicts.
const (
	LitmusForbidden = litmus.Forbidden
	LitmusAllowed   = litmus.Allowed
)

// LitmusSuite returns the full catalogue.
func LitmusSuite() []LitmusTest { return litmus.Suite() }

// VerifyLitmusSuite checks every catalogued verdict of every test,
// running the corpus concurrently (parallelism 0 means GOMAXPROCS).
func VerifyLitmusSuite(parallelism int) error { return litmus.VerifyAll(parallelism) }

// LitmusTestByName looks a test up by name (e.g. "MP", "Example2").
func LitmusTestByName(name string) (LitmusTest, bool) { return litmus.Get(name) }

// VerifyLitmus checks every catalogued verdict of a test against the
// operational model.
func VerifyLitmus(t LitmusTest) error { return litmus.Verify(t) }
