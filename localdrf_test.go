package localdrf

import (
	"errors"
	"strings"
	"testing"
)

func mpProgram() *Program {
	return NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p := mpProgram()

	// Operational and axiomatic enumeration agree.
	op, err := Outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := OutcomesAxiomatic(p)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Equal(ax) {
		t.Fatal("public API: operational and axiomatic outcomes differ")
	}

	// The MP violation is forbidden.
	if op.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Fatal("MP violation allowed through public API")
	}

	// SC outcomes are included in the full set.
	sc, err := OutcomesSC(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.SubsetOf(op) {
		t.Fatal("SC outcomes not included")
	}
}

func TestPublicAPIParse(t *testing.T) {
	p, err := ParseProgram(`
name SB
var x y
thread P0
  x = 1
  r0 = y
end
thread P1
  y = 1
  r1 = x
end
`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Exists(func(o Outcome) bool { return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0 }) {
		t.Error("SB relaxation missing via parsed program")
	}
}

func TestPublicAPIRaces(t *testing.T) {
	p := mpProgram()
	reports, err := FindRaces(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("unguarded MP read should race")
	}
	free, err := IsSCRaceFree(p)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("racy program reported race-free")
	}
	// Local DRF from the initial state holds for any L.
	if err := CheckLocalDRFFrom(NewMachine(p), NewLocSet("x")); err != nil {
		t.Fatal(err)
	}
	stable, err := LStable(p, NewMachine(p), AllLocs(p))
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("initial state must be stable")
	}
}

func TestPublicAPITraceMonitor(t *testing.T) {
	p := mpProgram()
	checked := 0
	err := Traces(p, false, func(tr Trace) bool {
		want := TraceRaces(tr)
		got, err := MonitorTrace(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("monitor %v != oracle %v on trace %v", got, want, tr)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("monitor %v != oracle %v on trace %v", got, want, tr)
			}
		}
		if len(want) > 0 {
			checked++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("unguarded MP never raced; facade test is vacuous")
	}
}

func TestPublicAPIGlobalDRF(t *testing.T) {
	p := NewProgram("seq").
		Vars("x").
		Thread("P0").StoreI("x", 1).Load("r0", "x").Done().
		MustBuild()
	if err := CheckGlobalDRF(p); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICompilation(t *testing.T) {
	p := mpProgram()
	for _, s := range []Scheme{SchemeX86, SchemeARMBal, SchemeARMFbs} {
		if err := CheckCompilation(p, s); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	err := CheckCompilation(p, SchemeARMNaiveAtomics)
	var ce *CompilationError
	if !errors.As(err, &ce) {
		t.Errorf("fully naive scheme should fail compilation check, got %v", err)
	}
}

func TestPublicAPIHardwareOutcomes(t *testing.T) {
	p := mpProgram()
	hp, err := Compile(p, SchemeARMBal)
	if err != nil {
		t.Fatal(err)
	}
	set, err := HardwareOutcomes(hp, HardwareModel(SchemeARMBal))
	if err != nil {
		t.Fatal(err)
	}
	if set.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Error("ARM BAL admits the MP violation")
	}
}

func TestPublicAPIOptimiser(t *testing.T) {
	p := NewProgram("cse").
		Vars("a", "b").
		Thread("P0").Load("r1", "a").Load("r2", "b").Load("r3", "a").Done().
		MustBuild()
	f := ThreadFragment(p, 0)
	out, steps, err := CSE(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || len(out) != 3 {
		t.Fatalf("CSE produced %v via %v", out, steps)
	}
	ok, extra, err := TransformationSound(p, ReplaceThread(p, 0, out))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("CSE unsound: %v", extra)
	}
	// Reordering a read past a write is refused.
	if ok, reason := CanReorder(f[0], StoreInstr("b", I(1)), p); ok || !strings.Contains(reason, "poRW") {
		t.Errorf("poRW reorder allowed (%v, %q)", ok, reason)
	}
}

func TestPublicAPILitmus(t *testing.T) {
	suite := LitmusSuite()
	if len(suite) < 12 {
		t.Fatalf("litmus suite has %d entries", len(suite))
	}
	ex, ok := LitmusTestByName("Example3")
	if !ok {
		t.Fatal("Example3 missing")
	}
	if err := VerifyLitmus(ex); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPerf(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Fatalf("benchmark suite size %d", len(Benchmarks()))
	}
	b, ok := BenchmarkByName("kb")
	if !ok {
		t.Fatal("kb missing")
	}
	n := SimNormalized(b, ArchThunderX(), PerfBAL)
	if n < 0.9 || n > 1.3 {
		t.Errorf("kb BAL normalised %v implausible", n)
	}
}
