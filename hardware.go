package localdrf

import (
	"localdrf/internal/compile"
	"localdrf/internal/hw"
	"localdrf/internal/hw/arm"
	"localdrf/internal/hw/x86"
)

// ---- Compilation to hardware (§7.2–7.3) ----

// Scheme selects a compilation strategy. The sound schemes are
// SchemeX86 (table 1), SchemeARMBal (table 2a), SchemeARMFbs (table 2b)
// and SchemeARMSra; the remaining ones are deliberately broken ablations
// demonstrating that each ingredient of the sound schemes is necessary.
type Scheme = compile.Scheme

// Compilation schemes.
const (
	SchemeX86                 = compile.X86
	SchemeARMBal              = compile.ARMBal
	SchemeARMFbs              = compile.ARMFbs
	SchemeARMSra              = compile.ARMSra
	SchemeARMNaive            = compile.ARMNaive
	SchemeARMNaiveAtomics     = compile.ARMNaiveAtomics
	SchemeX86PlainAtomicStore = compile.X86PlainAtomicStore
)

// HardwareProgram is a compiled program over the hardware instruction
// set (plain/acquire/release loads and stores, dmb fences, dependency
// branches, rmw pairs).
type HardwareProgram = hw.Program

// HardwareExecution is a hardware candidate execution, checked against
// the x86-TSO (fig. 3) or ARMv8 (fig. 4) axioms.
type HardwareExecution = hw.Execution

// Compile lowers a program under the given scheme.
func Compile(p *Program, s Scheme) (*HardwareProgram, error) {
	return compile.Lower(p, s)
}

// HardwareModel returns the architecture consistency predicate matching
// a scheme: the abridged ARMv8 model for ARM schemes, x86-TSO otherwise.
func HardwareModel(s Scheme) func(*HardwareExecution) bool {
	if s.IsARM() {
		return arm.Consistent
	}
	return x86.Consistent
}

// HardwareOutcomes enumerates the outcomes the architecture model admits
// for a compiled program, projected onto the source observables.
func HardwareOutcomes(hp *HardwareProgram, consistent func(*HardwareExecution) bool) (*OutcomeSet, error) {
	return compile.Outcomes(hp, consistent)
}

// HardwareOutcomesParallel is HardwareOutcomes with explicit worker
// parallelism (0 means GOMAXPROCS; 1 is the sequential path, used by
// batch runs whose corpus fan-out already owns the cores).
func HardwareOutcomesParallel(hp *HardwareProgram, consistent func(*HardwareExecution) bool, parallelism int) (*OutcomeSet, error) {
	return compile.OutcomesParallel(hp, consistent, parallelism)
}

// CheckCompilation verifies compilation soundness (thms. 19/20) for one
// program and scheme: hardware outcomes ⊆ software outcomes. For the
// ablation schemes this returns a *CompilationError listing the leaked
// behaviours.
func CheckCompilation(p *Program, s Scheme) error {
	return compile.CheckSoundness(p, s, HardwareModel(s))
}

// CompilationError reports a soundness violation with the leaked
// outcomes.
type CompilationError = compile.SoundnessError
