package localdrf

// The litmus files under testdata/ document the text format accepted by
// cmd/litmus -file and cmd/drfcheck -file; these tests keep them parsing
// and behaving.

import (
	"os"
	"path/filepath"
	"testing"
)

func parseFile(t *testing.T, name string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProgram(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func TestTestdataMP(t *testing.T) {
	p := parseFile(t, "mp.litmus")
	set, err := Outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	if set.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Error("mp.litmus: violation allowed")
	}
}

func TestTestdataExample1(t *testing.T) {
	p := parseFile(t, "example1.litmus")
	set, err := Outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Forall(func(o Outcome) bool { return o.Mem["b"] == 10 }) {
		t.Error("example1.litmus: b != 10 in some execution (space bounding broken)")
	}
	races, err := FindRaces(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(races) == 0 {
		t.Error("example1.litmus should race on c")
	}
}

func TestTestdataMPRA(t *testing.T) {
	p := parseFile(t, "mp_ra.litmus")
	if !p.IsRA("F") {
		t.Fatal("F should parse as release-acquire")
	}
	set, err := Outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	if set.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Error("mp_ra.litmus: violation allowed")
	}
	// And the public API exposes the extension end to end.
	ax, err := OutcomesAxiomatic(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ax.Equal(set) {
		t.Error("mp_ra.litmus: models disagree through the public API")
	}
	if err := CheckCompilation(p, SchemeARMFbs); err != nil {
		t.Errorf("mp_ra.litmus: %v", err)
	}
}

func TestTestdataAllFilesParse(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".litmus" {
			continue
		}
		n++
		p := parseFile(t, e.Name())
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 3 {
		t.Errorf("expected at least 3 litmus files, found %d", n)
	}
}
