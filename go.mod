module localdrf

go 1.24
