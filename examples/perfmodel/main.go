// Perfmodel: the §8 evaluation in miniature — simulate a handful of
// fig. 5a workloads under each compilation scheme on both architecture
// profiles and print the normalised times the paper plots.
//
//	go run ./examples/perfmodel
package main

import (
	"fmt"

	"localdrf"
)

func main() {
	picks := []string{
		"almabench",  // FP-heavy numeric, low access rate
		"rnd_access", // synthetic mutable-access hammer
		"minilight",  // FP-heavy numeric, high access rate
		"menhir-sql", // symbolic, integer
		"sequence",   // highly functional, alignment-sensitive
	}
	schemes := []localdrf.PerfScheme{localdrf.PerfBAL, localdrf.PerfFBS, localdrf.PerfSRA}

	for _, arch := range []localdrf.Arch{localdrf.ArchThunderX(), localdrf.ArchPower()} {
		fmt.Printf("%s (simulated; normalised to baseline)\n", arch.Name)
		fmt.Printf("    %-14s", "benchmark")
		for _, s := range schemes {
			fmt.Printf(" %8s", s)
		}
		fmt.Println()
		for _, name := range picks {
			b, ok := localdrf.BenchmarkByName(name)
			if !ok {
				continue
			}
			fmt.Printf("    %-14s", name)
			for _, s := range schemes {
				fmt.Printf(" %8.3f", localdrf.SimNormalized(b, arch, s))
			}
			fmt.Println()
		}
		_, balAvg := localdrf.SimSuite(arch, localdrf.PerfBAL)
		_, fbsAvg := localdrf.SimSuite(arch, localdrf.PerfFBS)
		_, sraAvg := localdrf.SimSuite(arch, localdrf.PerfSRA)
		fmt.Printf("    suite averages: BAL %+.1f%%  FBS %+.1f%%  SRA %+.1f%%\n\n",
			100*(balAvg-1), 100*(fbsAvg-1), 100*(sraAvg-1))
	}

	fmt.Println("paper's averages: AArch64 BAL +2.5% FBS +0.6% SRA +85.3%;")
	fmt.Println("                  POWER   BAL +2.9% FBS +26.0% SRA +40.8%")
	fmt.Println("(the simulator reproduces the shape — who wins, by roughly what")
	fmt.Println(" factor, and why — not the absolute numbers; see EXPERIMENTS.md)")
}
