// Quickstart: build a program, enumerate its behaviours under the
// paper's memory model, and compare with sequential consistency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"localdrf"
)

func main() {
	// Message passing: P0 publishes data x behind an atomic flag F;
	// P1 reads the flag then the data.
	p := localdrf.NewProgram("MP").
		Vars("x").    // nonatomic data
		Atomics("F"). // atomic flag
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()

	fmt.Println(p)

	// All behaviours under the model.
	full, err := localdrf.Outcomes(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviours under the model (%d):\n", full.Len())
	for _, k := range full.Keys() {
		fmt.Println(" ", k)
	}

	// The message-passing guarantee: seeing the flag means seeing the
	// data. This is the frontier transfer of Write-AT/Read-AT (fig. 1).
	violation := func(o localdrf.Outcome) bool {
		return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0
	}
	fmt.Printf("\nflag seen but data stale (r0=1, r1=0)? %v\n", full.Exists(violation))

	// Sequential consistency forbids strictly more.
	sc, err := localdrf.OutcomesSC(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SC behaviours: %d (always a subset: %v)\n", sc.Len(), sc.SubsetOf(full))

	// The axiomatic model (§6) agrees exactly — thms. 15/16.
	ax, err := localdrf.OutcomesAxiomatic(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("axiomatic model agrees with operational model: %v\n", ax.Equal(full))

	// The unconditional read of x races when the flag was not observed.
	races, err := localdrf.FindRaces(p, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndata races found: %d\n", len(races))
	for _, r := range races {
		fmt.Println(" ", r)
	}
	fmt.Println("…and yet the racy program still has bounded, well-defined behaviour:")
	fmt.Println("that is the point of the paper.")
}
