// Releaseacquire: the paper's §10 future-work extension, implemented —
// release-acquire atomics in the style of Kang et al., sitting between
// racy nonatomics and the paper's sequentially consistent atomics.
//
//	go run ./examples/releaseacquire
package main

import (
	"fmt"
	"log"

	"localdrf"
)

func main() {
	// One program shape, three atomicity flavours for the two cells.
	build := func(name string, declare func(*localdrf.Builder) *localdrf.Builder) *localdrf.Program {
		b := localdrf.NewProgram(name)
		b = declare(b)
		return b.
			Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
			Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
			MustBuild()
	}
	relaxed := func(o localdrf.Outcome) bool {
		return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0
	}

	fmt.Println("store buffering (Dekker's handshake), per atomicity flavour:")
	for _, c := range []struct {
		name    string
		declare func(*localdrf.Builder) *localdrf.Builder
	}{
		{"nonatomic", func(b *localdrf.Builder) *localdrf.Builder { return b.Vars("X", "Y") }},
		{"release-acquire", func(b *localdrf.Builder) *localdrf.Builder { return b.RAs("X", "Y") }},
		{"SC atomic", func(b *localdrf.Builder) *localdrf.Builder { return b.Atomics("X", "Y") }},
	} {
		p := build("SB-"+c.name, c.declare)
		set, err := localdrf.Outcomes(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-16s r0=r1=0 allowed: %-5v", c.name, set.Exists(relaxed))
		races, err := localdrf.FindRaces(p, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   races: %d\n", len(races))
	}
	fmt.Println("(RA keeps the relaxation but removes the races — weaker than SC, stronger than nothing)")

	// What RA does give you: message passing.
	mp := localdrf.NewProgram("MP+ra").
		Vars("data").
		RAs("READY").
		Thread("producer").StoreI("data", 42).StoreI("READY", 1).Done().
		Thread("consumer").Load("seen", "READY").Load("value", "data").Done().
		MustBuild()
	set, err := localdrf.Outcomes(mp)
	if err != nil {
		log.Fatal(err)
	}
	ok := set.Forall(func(o localdrf.Outcome) bool {
		return o.Reg(1, "seen") != 1 || o.Reg(1, "value") == 42
	})
	fmt.Printf("\nrelease/acquire message passing: seen ⇒ value=42 in all executions: %v\n", ok)

	// The two semantics agree on the extension too.
	ax, err := localdrf.OutcomesAxiomatic(mp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operational ≡ axiomatic on the RA program: %v\n", ax.Equal(set))

	// And the compilation story: ldar/stlr on ARM, plain movs on x86.
	for _, s := range []localdrf.Scheme{localdrf.SchemeARMBal, localdrf.SchemeX86} {
		err := localdrf.CheckCompilation(mp, s)
		fmt.Printf("compiled soundly under %v: %v\n", s, err == nil)
	}
}
