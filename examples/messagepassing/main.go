// Messagepassing: the local DRF workflow of §4–§5 on a realistic
// publish/subscribe fragment.
//
// A producer initialises a record (two nonatomic fields) and publishes
// it through an atomic pointer-like flag. A consumer checks the flag and
// reads the fields. Meanwhile an unrelated thread races on a scratch
// location. Global DRF says nothing (the program has a race); local DRF
// proves the record fields still behave sequentially.
//
//	go run ./examples/messagepassing
package main

import (
	"fmt"
	"log"

	"localdrf"
)

func main() {
	p := localdrf.NewProgram("publish").
		Vars("field1", "field2", "scratch").
		Atomics("PUB").
		// Producer: initialise, then publish.
		Thread("producer").
		StoreI("field1", 10).
		StoreI("field2", 20).
		StoreI("PUB", 1).
		StoreI("scratch", 1). // racy side traffic
		Done().
		// Consumer: check the flag, then read both fields twice (an
		// invariant check a defensive programmer might write).
		Thread("consumer").
		Load("seen", "PUB").
		JmpZ("seen", "done").
		Load("a1", "field1").
		Load("a2", "field1").
		Load("b", "field2").
		Label("done").
		StoreI("scratch", 2). // races with the producer's scratch write
		Done().
		MustBuild()

	// 1. The program races — but only on scratch.
	races, err := localdrf.FindRaces(p, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("races:")
	for _, r := range races {
		fmt.Println("  ", r)
	}

	// 2. Global DRF does not apply.
	free, err := localdrf.IsSCRaceFree(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSC-race-free (global DRF applicable)? %v\n", free)

	// 3. Local DRF: choose L = the fragment's locations (§5's rule of
	// thumb), check the initial state is L-stable, and conclude the
	// fragment behaves sequentially despite the scratch race.
	L := localdrf.NewLocSet("field1", "field2", "PUB")
	m := localdrf.NewMachine(p)
	stable, err := localdrf.LStable(p, m, L)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial state L-stable for L={field1, field2, PUB}? %v\n", stable)
	if err := localdrf.CheckLocalDRFFrom(m, L); err != nil {
		log.Fatal(err)
	}
	fmt.Println("local DRF theorem verified from the initial state (thm 13)")

	// 4. The semantic payoff, checked exhaustively: whenever the flag is
	// seen, both reads of field1 agree and field2 is fully initialised.
	set, err := localdrf.Outcomes(p)
	if err != nil {
		log.Fatal(err)
	}
	ok := set.Forall(func(o localdrf.Outcome) bool {
		if o.Reg(1, "seen") != 1 {
			return true
		}
		return o.Reg(1, "a1") == 10 && o.Reg(1, "a2") == 10 && o.Reg(1, "b") == 20
	})
	fmt.Printf("\nflag seen ⇒ record fully visible and stable, in all executions: %v\n", ok)
	fmt.Println("(the race on scratch is bounded in space: it cannot leak into the record)")
}
