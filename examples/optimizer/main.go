// Optimizer: the §7.1 story end to end — derive the paper's valid
// optimisations from reorderings and peepholes, watch the invalid one be
// rejected, and confirm both verdicts semantically by exhaustive
// model checking.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"localdrf"
)

func main() {
	// The paper's constant-propagation example: [a = 1; b = c; r = a].
	p := localdrf.NewProgram("constprop").
		Vars("a", "b", "c").
		Thread("P0").
		StoreI("a", 1).
		Load("rc", "c").
		StoreR("b", "rc").
		Load("r", "a").
		Done().
		// A racy context: another thread hammers the same locations.
		Thread("P1").StoreI("c", 5).Load("x", "a").Done().
		MustBuild()

	frag := localdrf.ThreadFragment(p, 0)
	fmt.Printf("fragment:     [%s]\n", frag)

	out, steps, err := localdrf.ConstProp(frag, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("const-prop ⇒  [%s]   (%d validated steps)\n", out, len(steps))

	// Every step was checked against the §7.1 rules; now confirm the
	// whole transformation semantically: no new behaviours, even in the
	// racy context.
	sound, extra, err := localdrf.TransformationSound(p, localdrf.ReplaceThread(p, 0, out))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantically sound in the racy context: %v %v\n\n", sound, extra)

	// The paper's invalid transformation: redundant store elimination.
	rse := localdrf.NewProgram("rse").
		Vars("a", "b", "c").
		Thread("P0").
		Load("r1", "a").
		Load("rc", "c").
		StoreR("b", "rc").
		StoreR("a", "r1"). // the "redundant" write-back
		Done().
		Thread("P1").StoreI("a", 7).Done().
		MustBuild()
	rseFrag := localdrf.ThreadFragment(rse, 0)
	fmt.Printf("fragment:     [%s]\n", rseFrag)
	if _, _, err := localdrf.RedundantStoreElimination(rseFrag, rse); err != nil {
		fmt.Printf("RSE rejected: %v\n\n", err)
	}

	// Why poRW matters: hoisting a store over a read manufactures
	// outcomes in a load-buffering context.
	lb := localdrf.NewProgram("lb-ctx").
		Vars("x", "y").
		Thread("P0").Load("r", "x").StoreI("y", 1).Done().
		Thread("P1").
		Load("ry", "y").
		JmpZ("ry", "skip").
		StoreI("x", 1).
		Label("skip").
		Done().
		MustBuild()
	swapped := localdrf.Fragment{
		localdrf.StoreInstr("y", localdrf.I(1)),
		localdrf.LoadInstr("r", "x"),
	}
	ok, reason := localdrf.CanReorder(localdrf.ThreadFragment(lb, 0)[0], localdrf.ThreadFragment(lb, 0)[1], lb)
	fmt.Printf("may [r = x] and [y = 1] swap? %v (%s)\n", ok, reason)
	sound, extra, err = localdrf.TransformationSound(lb, localdrf.ReplaceThread(lb, 0, swapped))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("and indeed the swap manufactures outcomes: sound=%v, new=%v\n", sound, extra)
}
