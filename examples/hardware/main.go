// Hardware: compile programs to x86-TSO and ARMv8 per the paper's
// tables, enumerate what the hardware models allow, and watch the
// ablations fail — the executable content of thms. 19/20 and §9.1.
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"

	"localdrf"
)

func main() {
	lb, _ := localdrf.LitmusTestByName("LB")

	// Load buffering is forbidden by the software model…
	sw, err := localdrf.Outcomes(lb.Prog)
	if err != nil {
		log.Fatal(err)
	}
	lbOutcome := func(o localdrf.Outcome) bool {
		return o.Reg(0, "r0") == 1 && o.Reg(1, "r1") == 1
	}
	fmt.Printf("LB outcome r0=r1=1 under the software model: %v\n", sw.Exists(lbOutcome))

	// …but bare ARM code exhibits it (the §9.1 example):
	naive, err := localdrf.Compile(lb.Prog, localdrf.SchemeARMNaive)
	if err != nil {
		log.Fatal(err)
	}
	hwSet, err := localdrf.HardwareOutcomes(naive, localdrf.HardwareModel(localdrf.SchemeARMNaive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("…under bare ARM loads/stores:                %v  ← the naive scheme is unsound\n",
		hwSet.Exists(lbOutcome))

	// Table 2a's branch-after-load restores soundness.
	bal, err := localdrf.Compile(lb.Prog, localdrf.SchemeARMBal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBAL lowering of thread P0:")
	for _, in := range bal.Threads[0].Code {
		fmt.Printf("    %s\n", in)
	}
	hwSet, err = localdrf.HardwareOutcomes(bal, localdrf.HardwareModel(localdrf.SchemeARMBal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LB outcome under BAL: %v\n", hwSet.Exists(lbOutcome))

	// Full soundness sweep over the catalogue for the paper's schemes.
	fmt.Println("\nsoundness (hardware outcomes ⊆ software outcomes) on the litmus catalogue:")
	for _, s := range []localdrf.Scheme{localdrf.SchemeX86, localdrf.SchemeARMBal, localdrf.SchemeARMFbs, localdrf.SchemeARMSra} {
		bad := 0
		for _, tc := range localdrf.LitmusSuite() {
			if err := localdrf.CheckCompilation(tc.Prog, s); err != nil {
				bad++
			}
		}
		fmt.Printf("    %-22v unsound on %d/%d tests\n", s, bad, len(localdrf.LitmusSuite()))
	}

	// And the x86 ablation: atomic stores must be xchg, not mov (§7.2).
	fmt.Println("\nx86 atomic store as plain mov (ablation):")
	sbat, _ := localdrf.LitmusTestByName("SB+at")
	if err := localdrf.CheckCompilation(sbat.Prog, localdrf.SchemeX86PlainAtomicStore); err != nil {
		fmt.Printf("    %v\n", err)
	}
}
