package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The check: a variable or struct field that is ever passed by address
// to a sync/atomic operation must ONLY be accessed through sync/atomic.
// A plain load or store of the same object races with the atomic
// accesses — the Go memory model gives plain accesses no ordering
// against atomic ones, and the race detector only catches the mix on
// schedules that exercise it. This is exactly the bug class the
// happens-before monitor in this repo exists to catch dynamically; the
// analyzer catches it at vet time.
//
// Scope (deliberately syntactic, like the stock vet checks):
//
//   - an object becomes "atomic" when &obj is the first argument of a
//     call to any function in package sync/atomic;
//   - every later plain read or write of that object is reported;
//   - taking the object's address (outside an atomic call) is NOT
//     reported — passing &obj around is how the atomic call sites are
//     usually built, and following the pointer is a whole-program
//     aliasing question vet checks stay away from.

// diag is one finding, positioned at the plain access.
type diag struct {
	pos token.Pos
	msg string
}

// check analyses one type-checked package. info must have Uses
// populated; files are the package's syntax trees.
func check(fset *token.FileSet, files []*ast.File, info *types.Info) []diag {
	// Pass 1: objects whose address reaches a sync/atomic call.
	atomicUse := map[types.Object]token.Pos{} // object -> first atomic site
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if obj := addressedObject(info, un.X); obj != nil {
				if _, seen := atomicUse[obj]; !seen {
					atomicUse[obj] = un.X.Pos()
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: plain accesses of those objects. Subtrees under a unary &
	// are skipped wholesale — that covers the atomic call arguments
	// themselves and ordinary address-taking (see scope note above).
	var diags []diag
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					return false
				}
			case *ast.Ident:
				obj := info.Uses[n]
				site, hot := atomicUse[obj]
				if !hot {
					return true
				}
				diags = append(diags, diag{
					pos: n.Pos(),
					msg: fmt.Sprintf("non-atomic access of %s, which is accessed atomically at %s",
						obj.Name(), fset.Position(site)),
				})
			}
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}

// addressedObject resolves the operand of &expr to the variable or
// struct-field object it names, or nil for shapes the check does not
// track (index expressions, pointer dereferences, …).
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		// Both c.field and pkg.Var resolve through Uses of the Sel.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
