// Command atomicmix is a vet analyzer for mixed atomic/plain access:
// any variable or struct field that is passed to sync/atomic must be
// accessed through sync/atomic everywhere. Build it and hand it to the
// toolchain as a vettool:
//
//	go build -o /tmp/atomicmix ./tools/analyzers/atomicmix
//	go vet -vettool=/tmp/atomicmix ./...
//
// It speaks the cmd/go vet-tool protocol directly (the -V=full /
// -flags handshake plus a *.cfg unit file per package) using only the
// standard library, so it builds in this module with no dependencies —
// golang.org/x/tools/go/analysis/unitchecker is the usual way to write
// one of these, and this is a self-contained equivalent for the one
// analyzer. The analysis itself is in check.go.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	for _, a := range os.Args[1:] {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags.
			fmt.Println("[]")
			return
		}
	}
	args := os.Args[1:]
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: atomicmix unit.cfg (invoked by go vet -vettool=atomicmix)\n")
		os.Exit(1)
	}
	if err := run(args[0]); err != nil {
		fmt.Fprintf(os.Stderr, "atomicmix: %v\n", err)
		os.Exit(1)
	}
}

// printVersion answers the cmd/go version handshake; the build ID keys
// vet's result cache, so it must change when the tool changes — the
// hash of the executable does.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := filepath.Base(exe)
	prog = strings.TrimSuffix(prog, ".exe")
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", prog, h.Sum(nil))
}

// config mirrors the JSON unit file cmd/go writes for each package
// (the shape unitchecker.Config documents).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func run(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// cmd/go requires the facts file to exist after every run, even a
	// facts-only one; this analyzer exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Imports resolve through the export-data files cmd/go names in the
	// unit config, with vendor/ rewrites applied via ImportMap.
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := mapImporter{
		m:   cfg.ImportMap,
		imp: importer.ForCompiler(fset, compiler, lookup),
	}
	var tcErrs []error
	tconf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
		Sizes:    types.SizesFor(compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{Uses: map[*ast.Ident]types.Object{}}
	if _, err := tconf.Check(cfg.ImportPath, fset, files, info); err != nil && len(tcErrs) == 0 {
		tcErrs = append(tcErrs, err)
	}
	if len(tcErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		for _, e := range tcErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		os.Exit(1)
	}

	diags := check(fset, files, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.pos), d.msg)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return nil
}

// mapImporter applies the unit config's source→canonical import-path
// rewrites before delegating to the gc export-data importer.
type mapImporter struct {
	m   map[string]string
	imp types.Importer
}

func (mi mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}
