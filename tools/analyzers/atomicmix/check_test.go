package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The tests typecheck source against a stubbed sync/atomic (bodyless
// declarations are enough for go/types), so no export data or build
// cache is involved and the analysis runs hermetically.

const atomicStub = `package atomic

func AddInt64(addr *int64, delta int64) (new int64)
func LoadInt64(addr *int64) (val int64)
func StoreInt64(addr *int64, val int64)
func CompareAndSwapInt64(addr *int64, old, new int64) (swapped bool)
func AddUint32(addr *uint32, delta uint32) (new uint32)
func LoadUint32(addr *uint32) (val uint32)
func StoreUint32(addr *uint32, val uint32)
`

type stubImporter struct {
	fset  *token.FileSet
	cache map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	if path != "sync/atomic" {
		return nil, fmt.Errorf("stub importer: unexpected import %q", path)
	}
	f, err := parser.ParseFile(si.fset, "atomic.go", atomicStub, 0)
	if err != nil {
		return nil, err
	}
	pkg, err := (&types.Config{}).Check(path, si.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// runCheck typechecks src as a single-file package and returns the
// findings rendered as "line:col: message".
func runCheck(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: &stubImporter{fset: fset, cache: map[string]*types.Package{}}}
	info := &types.Info{Uses: map[*ast.Ident]types.Object{}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range check(fset, []*ast.File{f}, info) {
		pos := fset.Position(d.pos)
		got = append(got, fmt.Sprintf("%d:%d: %s", pos.Line, pos.Column, d.msg))
	}
	return got
}

func TestMixedAccessFlagged(t *testing.T) {
	src := `package p

import "sync/atomic"

type counter struct {
	n int64
	m int64
}

var hits int64
var plain int64

func f(c *counter) int64 {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&hits, 1)
	c.n = 0         // mixed: plain write of c.n
	x := hits       // mixed: plain read of hits
	c.m = 2         // fine: m is never atomic
	plain++         // fine: plain is never atomic
	return x + c.n  // mixed: plain read of c.n
}
`
	got := runCheck(t, src)
	want := []struct {
		prefix string
		name   string
	}{
		{"16:4:", "n"},    // c.n = 0
		{"17:7:", "hits"}, // x := hits
		{"20:15:", "n"},   // return … + c.n
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if !strings.HasPrefix(got[i], w.prefix) || !strings.Contains(got[i], "access of "+w.name+",") {
			t.Errorf("finding %d = %q, want position %s on %s", i, got[i], w.prefix, w.name)
		}
	}
}

func TestAtomicOnlyAndAddressTakingClean(t *testing.T) {
	src := `package p

import "sync/atomic"

var n int64

func addr() *int64 { return &n } // address-taking alone is not flagged

func g() int64 {
	atomic.StoreInt64(&n, 1)
	atomic.AddInt64(&n, 2)
	if atomic.CompareAndSwapInt64(&n, 3, 4) {
		return atomic.LoadInt64(&n)
	}
	return 0
}
`
	if got := runCheck(t, src); len(got) != 0 {
		t.Fatalf("want no findings, got:\n%s", strings.Join(got, "\n"))
	}
}

func TestNoAtomicUseNoFindings(t *testing.T) {
	src := `package p

var n int64

func h() int64 {
	n = 7
	return n
}
`
	if got := runCheck(t, src); got != nil {
		t.Fatalf("want nil findings without sync/atomic, got:\n%s", strings.Join(got, "\n"))
	}
}
