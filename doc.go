// Package localdrf is a Go reproduction of "Bounding Data Races in Space
// and Time" (Dolan, Sivaramakrishnan, Madhavapeddy; PLDI 2018) — the
// memory model that became the OCaml 5 memory model.
//
// The package is organised around the paper's artefacts:
//
//   - Programs: a small multi-threaded register language with atomic and
//     nonatomic locations (Builder, ParseProgram), standing in for the
//     paper's abstract expressions e, e′.
//
//   - The operational model (§3): stores map nonatomic locations to
//     timestamped histories and atomic locations to (frontier, value)
//     pairs; every thread carries a frontier. Outcomes and OutcomesSC
//     enumerate behaviours exhaustively; NewMachine exposes the raw
//     machine for step-level work.
//
//   - Local DRF (§4): FindRaces, IsSCRaceFree, LStable,
//     CheckLocalDRFFrom, CheckGlobalDRF are executable counterparts of
//     defs. 6–12 and thms. 13/14.
//
//   - The axiomatic model (§6): OutcomesAxiomatic enumerates consistent
//     executions; it agrees with the operational enumeration (thms.
//     15/16, validated empirically in the test suite).
//
//   - Compilation (§7): Compile lowers programs to x86-TSO or ARMv8 per
//     the paper's tables (plus deliberately broken ablations), and
//     CheckCompilation verifies soundness by outcome-set inclusion
//     against the hardware models of figs. 3 and 4.
//
//   - Optimisations (§7.1): CanReorder, the RL/SF/DS peepholes, and
//     derived CSE/DSE/constant-propagation passes; invalid
//     transformations (redundant store elimination) fail to derive.
//
//   - The performance evaluation (§8): a pipeline-simulator substitute
//     regenerates the shape of figs. 5a–5c over the paper's 29-benchmark
//     suite (see DESIGN.md for the substitution rationale).
//
// All exhaustive searches — operational outcome enumeration, the trace
// scans of the race machinery, the hardware candidate-execution
// enumeration, and the litmus corpus runner — run on a single shared
// exploration engine (internal/engine). The engine owns canonical-state
// identity (a compact binary encoding of machine states, ordinal-renamed
// timestamps, interned by 128-bit hash), memoisation and state budgets,
// and scheduling (a work-stealing parallel frontier search plus a task
// runner for corpus sweeps). Results are accumulated in per-worker sinks
// and merged as sets, so every enumeration is deterministic at any
// parallelism; OutcomesSequential retains the single-threaded memoised
// reference path for differential testing. A new semantics plugs into the
// engine by providing a canonical state encoding and a successor
// function — see internal/engine's package comment. The trace-level
// analyses LStable and CheckLocalDRFFrom run on the same engine with
// path-carrying states (a state is a machine plus the trace that reached
// it, identified by its DFS child-index path), with sequential reference
// implementations retained and differentially tested.
//
// Beyond the exhaustive checkers, internal/monitor is a streaming
// subsystem that makes def. 8 happens-before and def. 9/10 races
// executable at scale: an online, single-pass race monitor over one
// observed trace, using per-thread vector clocks with per-location
// last-access records — tens of millions of events per second on a
// single core. Its live state is bounded: nonatomic locations are kept
// as FastTrack-style epochs (a single thread@clock word) that escalate
// to per-thread vectors only on genuinely concurrent history, and
// release-acquire messages are garbage-collected as soon as the
// pointwise-minimum thread frontier passes their writer event (the join
// is then provably a no-op forever), so memory tracks the
// synchronisation window rather than the trace length — O(events ×
// threads) time worst case, O(locations + threads²) space until
// histories actually race. Traces are ingested three ways: converted
// machine traces (monitor.Table), a pull Source, or the versioned raw
// wire format (binary and text) whose validating decoder monitors
// executions recorded outside the process (MonitorTraceReader). The
// monitor is fed by internal/schedgen, which executes scaled-up random
// programs (progsynth.Scaled: many threads looping over many locations,
// with a sync-heartbeat ring so frontiers keep advancing) under fair,
// unfair or bursty scheduling policies — materialised (Generate),
// pushed event-by-event (Stream) or in reused batches (StreamBatch), or
// encoded straight to the wire format (Encode), reaching 10⁶+ events
// without ever buffering the schedule; finished threads can announce a
// retirement event (KindHalt) so windowed analyses stop retaining state
// on their behalf.
//
// # Parallel ingest pipeline
//
// Multicore ingest is a staged pipeline, not replay-per-shard:
//
//	wire bytes ─▶ parser 1 ─┐
//	              parser 2 ─┤ (frame-parallel      sync        ┌─▶ race back-end 1
//	              ...       ├─▶ decode, then ─▶ front-end ─────┼─▶ race back-end 2
//	              parser N ─┘  FIFO sequencing) (sequencer)    └─▶ race back-end M
//
// On the left, the delta-compressed framed v2 wire format (varint
// thread/location/timestamp deltas; ≥1.5× smaller than v1 on the
// reference stream; v1 traces still decode) is decoded by N parser
// workers (monitor.ParallelTraceReader): frames are self-delimiting, so
// the structural work — tag and varint extraction, the bulk of decode
// cost — runs fully in parallel, while the per-frame delta context
// (previous thread, per-thread location, per-location timestamp, halt
// set) is carried frame-to-frame through a small handoff record, and a
// round-robin collector (engine.FanRing) restores global FIFO order.
// Decode errors surface in stream order with the exact message the
// sequential reader would produce.
//
// In the middle, a single synchronisation front-end consumes the
// ordered stream once — all clock joins, RA message retention and
// windowed GC — and routes each nonatomic access, plus a compact
// clock-delta side channel, to the race back-end owning its location
// (initially loc mod shards). Records travel in batches over bounded
// SPSC rings (engine.BatchQueue), so total work is O(events) +
// O(events/shards × check cost) per back-end instead of O(shards ×
// events), and the merged report set is byte-identical to the
// sequential monitor at any parser count, shard count, batch size and
// GC interval (monitor.Pipeline, monitor.ShardedRaces,
// monitor.ReadRacesParallel).
//
// The static loc-mod-shards split degenerates under skewed traffic —
// real streams are Zipf-like, and one back-end can receive nearly every
// record. With PipelineConfig.Rebalance the front-end counts per-location
// traffic and, at GC-sweep barriers, migrates hot locations from the
// most- to the least-loaded back-end. The migration protocol is
// correct by construction: the rings are quiesced (a nil-batch barrier
// acknowledged by every back-end, so nothing is in flight), the
// location's epoch-or-vector state moves wholesale between the two
// checkers, and the router remaps before feeding resumes — the same
// checking code then sees the same state at the same stream positions,
// so reports, retention statistics and snapshots are unchanged at every
// configuration. Traffic counters are halved each sweep so the router
// tracks the recent window, and migrations are capped per sweep.
//
// The same GC-sweep barrier also drives escalation compaction: a
// nonatomic location whose last-access record escalated to a per-thread
// vector during a racy phase is demoted back to a FastTrack epoch once
// the advancing minimum-frontier proves at most one thread's component
// still matters — long-quiet locations stop paying vector cost, so live
// state (and snapshot size) strictly shrinks as threads synchronise or
// halt. Back-ends compact at identical stream positions (the sweep is
// broadcast through the lanes), keeping parallel state byte-identical
// to sequential.
//
// # Checkpoint & resume
//
// Monitoring can stop at any event index and continue later, in another
// process or under another configuration. monitor.Monitor.Snapshot
// serialises the complete live state — thread and release clocks,
// epoch-or-vector per-location last-access state, dedup bitmasks, live
// RA messages, the GC frontier/interval/adaptive bounds and the halt
// set — in a versioned, self-describing framed binary format ("LDCK");
// monitor.Restore rebuilds a monitor that finishes the stream with
// reports and RAStats byte-identical to a run that never stopped. The
// encoding is canonical, so resume composes (a snapshot of a restored
// monitor equals the unsplit snapshot at the same index) and the
// encoded size is a direct measurement of the paper's boundedness
// claim: it stays flat over a million-event stream (~11 KB) while an
// unbounded-GC control grows without limit. monitor.Pipeline snapshots
// by quiesce-drain — a barrier through every back-end ring, after which
// the front-end's sync state and the back-ends' per-location state are
// reassembled in declaration order — producing bytes identical to the
// sequential monitor's at the same position, so checkpoints resume
// sequentially, sharded at any count (Snapshot.Pipeline routes each
// restored location to its owning back-end), or under a different GC
// regime, all report-preserving. Checkpoints taken mid-ingestion of a
// wire-format trace carry the reader's byte offset and v2 delta context
// (monitor.ReaderCheckpoint), so the resumed process seeks straight to
// where monitoring stopped instead of re-decoding the prefix. The
// snapshot decoder validates everything and errors (never panics) on
// malformed input — fuzzed, like the trace decoder. The metamorphic
// split-resume harness in internal/modeltest proves parity at every
// grid split point of all 210 schedgen streams (every tenth seed
// Zipf-skewed) across the {1,2,4,8}-shard × rebalance on/off × {GC-16,
// default, adaptive} matrix, including double splits, cross-config
// resumes, and snapshots taken at rebalance barriers — which are
// byte-identical to the sequential monitor's despite live migrations.
//
// # Static analysis
//
// internal/staticrace is a sound static may-race analysis: with no
// trace enumeration at all, AnalyzeStatic partitions a program's
// nonatomic locations into a may-race set and a certified race-free
// set, each certificate naming its reason. The abstraction is a
// flow-sensitive abstract interpretation over bounded value sets
// (explicit ⊤ beyond 8 values) with register provenance, run to a
// whole-program fixpoint over the per-location abstract values;
// branch refinement turns an observed guard value into a fact about
// the flag location, and the certificate rules are: location unused,
// single-thread, read-only, guard-ordered (every qualifying flag
// write is same-thread with and dominates the data access, so the
// cross-thread reader's guard orders the pair happens-before), and
// pairwise-ordered. Abstract reachability prunes out-of-thin-air
// stores, so LB+ctrl certifies — precision the obvious syntactic
// analysis misses. Soundness is not argued, it is measured: the
// differential harness in internal/modeltest runs the full corpus
// (litmus catalogue plus hundreds of synthesised programs) through
// the exhaustive dynamic oracle and asserts static ⊇ dynamic on
// every one, and FuzzStaticSoundness keeps hunting for a miss in CI.
// The certificates license two consumers. First, the monitor's static
// pre-filter: Monitor.SetStaticFilter / PipelineConfig.StaticFilter
// (MonitorStaticFilter builds the mask, racemon -static-prefilter and
// the bench's static-prefilter-1M row exercise it) skip all
// race-checker work for certified locations — by soundness the
// reports, RAStats and snapshot bytes are proven identical with the
// filter on, sequentially and at every shard count; only the time
// changes. Second, certificate-strengthened compiler reorderings:
// CanReorderCert / DeriveOptimisationCert relax exactly the poRW
// constraint — the one §7.1 rule that exists to protect racy read
// values — when the certificate proves both locations race-free,
// validated semantically by outcome-set inclusion. This is the local
// DRF theorem used as a compiler licence: race-freedom on L, proven
// statically, buys SC reasoning on L. cmd/drfcheck -static prints the
// per-location verdicts next to the dynamic ones.
//
// # Observability
//
// The streaming subsystem is instrumented end to end through
// internal/obs, a dependency-free metrics kernel (counters, gauges,
// fixed-size vectors, power-of-two histograms in a named registry).
// The discipline is hot-path-safe by construction: the monitor's event
// loop touches only plain single-writer fields (the one addition on
// the per-event path is a per-kind tally increment) and publishes them
// into padded atomic cells at its natural barriers — GC sweeps, batch
// flushes, and quiesce acknowledgements — so concurrent scrapers read
// consistent values with bounded staleness (at most one GC window or
// batch) and zero contention on the ingest path. Two read paths exist:
// Monitor.Stats/Pipeline.Stats publish-then-snapshot for exact values
// (the pipeline form quiesces, so per-back-end loads are precise), and
// Obs().Snapshot() reads the atomics from any goroutine at any time.
// The catalogue covers the monitor (events by kind, races, GC sweep
// productivity, RA retention, escalations/demotions, snapshot codec
// sizes and latencies), the pipeline (routed/delta/min records, the
// batch-size histogram, quiesce latency, ring occupancy and stall/idle
// counts, per-back-end record/escalation/race vectors, migrations,
// load imbalance) and the parallel decoder (per-worker frames/bytes,
// sequencer wait) — see internal/monitor's obs.go for the full list.
// Instrumentation is proven free: the modeltest matrix includes a
// pipeline hammered by concurrent snapshot reads whose reports,
// RAStats and checkpoint bytes must equal the sequential monitor's,
// and the bench suite tracks an obs-overhead row (the online pass with
// a 1ms scraper) against the uninstrumented-equivalent baseline.
// cmd/racemon surfaces all of it: -stats-addr serves GET /stats (JSON
// snapshot plus per-counter rates), expvar at /debug/vars and pprof at
// /debug/pprof while the run ingests; -stats-interval prints a
// progress line; -stats-linger holds the endpoint open after short
// runs; and the -json summary embeds the final exact snapshot under
// "stats".
//
// # Service
//
// internal/service and cmd/racemond lift the monitor into a
// long-running, fault-tolerant, multi-tenant service: a TCP server
// where each connection carries one named trace session (its own
// sequential Monitor or sharded Pipeline), framed in CRC-32C chunks so
// a flipped byte or a torn stream is detected before any byte reaches
// the trace decoder. Durability is a per-session ring of LDCK snapshot
// files (atomic tmp+fsync+rename, newest-first recovery skipping
// corrupt generations), written every N monitored events and never on
// an abnormal end — a failed session's position is untrustworthy by
// definition, so corruption, disconnection, ingest timeout and server
// SIGKILL all collapse into the same safe move: revert to the newest
// checkpoint. Resume is deliberately stateless on the client
// (service.Client): every attempt replays the trace from byte 0 and
// the server discards up to the recovered offset, so the session id is
// the only resume key. Overload is explicit — a session cap and
// checkpoint backpressure shed admissions with "busy retry-after",
// per-read deadlines bound slow-loris clients, idle bookkeeping is
// evicted — and per-session telemetry rides the same obs registry
// under GET /stats. internal/faultinject supplies the deterministic
// fault surface (byte-offset connection cuts and corruption, torn and
// budget-limited checkpoint writes, write throttling); the package's
// chaos harness drives every fault schedule across shard counts and
// checkpoint intervals and requires the final reports and RAStats to
// be byte-identical to an uninterrupted run, including across
// kill-and-restart of the server process — which CI also drills with
// real processes via racemond -drive's golden-checked 8-session load,
// and cmd/experiments -run bench-service soaks with up to 128
// concurrent sessions (BENCH_service.json: aggregate events/sec, p99
// ingest latency, peak RSS).
//
// The monitor's verdicts are differentially tested against the
// exhaustive oracle race.Races on every corpus program, on hundreds of
// random programs, and on hundreds of generated schedules — at every GC
// interval (fixed and adaptive) and across the full pipeline
// (shards × batch × GC × rebalance) matrix, with the parallel
// wire-format reader round-tripping at {1,2,4} parsers; cmd/racemon
// exposes the checkpoint workflow as -checkpoint FILE [-checkpoint-at
// N] and -resume FILE.
//
// The command-line tools (cmd/litmus, cmd/drfcheck, cmd/memsim,
// cmd/racemon, cmd/experiments) and the examples directory exercise all
// of the above; EXPERIMENTS.md records paper-versus-measured results for
// every table and figure. cmd/racemon generates a million-event schedule
// (optionally Zipf-skewed: -skew S) and monitors it materialised or
// fused through the parallel pipeline (-pipeline -shards N
// [-rebalance]), on a single sequential monitor (-stream), and
// writes/ingests raw traces (-emit FILE [-wire 1|2], -trace FILE|-,
// decoded by -parsers N workers); its JSON reports the windowed GC's
// live, peak and collected RA-message counts. cmd/experiments -run
// bench emits engine-versus-baseline timings as JSON (BENCH_engine.json)
// and streaming-monitor throughput (BENCH_monitor.json: events/sec for
// the sequential, fused, sharded, pipeline-{2,4,8}shard,
// wire-v2-decode, pipeline-{2,4}parser-{4,8}shard, skewed-zipf,
// compaction-quiet and obs-overhead rows — compaction-quiet recording
// escalated-vector counts before and after demotion — each parallel
// row at a recorded GOMAXPROCS, plus peak live RA messages and
// allocs/event; the document records the host CPU model and Go
// version) so the performance trajectory is tracked across PRs.
// cmd/experiments -run bench-compare reruns the monitor suite and
// fails (exit nonzero, and CI with it) if any row regresses more than
// 15% in events/sec against the committed BENCH_monitor.json, warning
// first when the baseline's recorded CPU or toolchain differs from the
// host; -run bench-plot renders the events/sec trajectory across bench
// JSON snapshots as a dependency-free small-multiples SVG (a CI
// artifact). CI also fails if any racemon smoke run's report set —
// including the pipeline at 4 back-ends and both wire-version round
// trips — drifts from the committed golden, and curls a live racemon
// -stats-addr endpoint to assert the telemetry keys it ships.
package localdrf
