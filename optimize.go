package localdrf

import (
	"localdrf/internal/opt"
	"localdrf/internal/prog"
)

// ---- Compiler optimisations (§7.1) ----

// Instr is one program instruction; construct with LoadInstr, StoreInstr
// or via the Builder.
type Instr = prog.Instr

// LoadInstr builds the instruction dst = src (a memory read).
func LoadInstr(dst Reg, src Loc) Instr { return prog.Load{Dst: dst, Src: src} }

// StoreInstr builds the instruction dst = src (a memory write).
func StoreInstr(dst Loc, src Operand) Instr { return prog.Store{Dst: dst, Src: src} }

// Fragment is a straight-line instruction sequence of one thread, the
// unit over which optimisations are derived.
type Fragment = opt.Fragment

// OptStep is one primitive transformation (an adjacent swap or a
// peephole) in a derivation.
type OptStep = opt.Step

// Peephole identifies the §7.1 same-location transformations: redundant
// load, store forwarding, dead store.
type Peephole = opt.Peephole

// Peepholes.
const (
	PeepholeRedundantLoad   = opt.RedundantLoad
	PeepholeStoreForwarding = opt.StoreForwarding
	PeepholeDeadStore       = opt.DeadStore
)

// ThreadFragment extracts thread ti's code as a fragment.
func ThreadFragment(p *Program, ti int) Fragment {
	return opt.Fragment(p.Threads[ti].Code)
}

// CanReorder reports whether two adjacent instructions may swap under the
// memory model's §7.1 constraints (poat−, po−at, poRW, pocon) and
// ordinary dataflow; when forbidden, the reason names the constraint.
func CanReorder(a, b prog.Instr, p *Program) (ok bool, reason string) {
	return opt.CanSwap(a, b, p.IsAtomic)
}

// DeriveOptimisation replays a sequence of primitive steps, validating
// each; the paper's invalid transformations fail here with the violated
// constraint in the error.
func DeriveOptimisation(f Fragment, steps []OptStep, p *Program) (Fragment, error) {
	return opt.Derive(f, steps, p.IsAtomic)
}

// RaceFreedomCertificate answers whether a location is proven race-free
// in every execution of the program under transformation; a
// *StaticReport from AnalyzeStatic satisfies it.
type RaceFreedomCertificate = opt.Certificate

// CanReorderCert is CanReorder with the local-DRF licence: a swap
// forbidden only by poRW (a read moving after a later write) is
// permitted when the certificate proves both locations race-free — on
// race-free locations the program behaves sequentially consistently
// and interference-free, so the read returns the same value at either
// position. All other constraints stand.
func CanReorderCert(a, b prog.Instr, p *Program, cert RaceFreedomCertificate) (ok bool, reason string) {
	return opt.CanSwapCert(a, b, p.IsAtomic, cert)
}

// DeriveOptimisationCert is DeriveOptimisation with swap steps validated
// under the certificate (CanReorderCert).
func DeriveOptimisationCert(f Fragment, steps []OptStep, p *Program, cert RaceFreedomCertificate) (Fragment, error) {
	return opt.DeriveCert(f, steps, p.IsAtomic, cert)
}

// CSE derives common-subexpression elimination (merging redundant loads)
// from swaps plus the RL peephole, applied to a fixpoint.
func CSE(f Fragment, p *Program) (Fragment, []OptStep, error) {
	return opt.DeriveCSEAll(f, p.IsAtomic)
}

// DSE derives dead-store elimination.
func DSE(f Fragment, p *Program) (Fragment, []OptStep, error) {
	return opt.DeriveDSE(f, p.IsAtomic)
}

// ConstProp derives constant propagation (store forwarding of an
// immediate into a later load).
func ConstProp(f Fragment, p *Program) (Fragment, []OptStep, error) {
	return opt.DeriveConstProp(f, p.IsAtomic)
}

// RedundantStoreElimination attempts the paper's invalid transformation;
// it fails whenever the motion would relax poRW, which is every case the
// paper discusses.
func RedundantStoreElimination(f Fragment, p *Program) (Fragment, []OptStep, error) {
	return opt.DeriveRSE(f, p.IsAtomic)
}

// Sequentialise replaces two parallel threads by their sequential
// composition — valid in this model, famously invalid in C++/Java.
func Sequentialise(p *Program, first, second int) (*Program, error) {
	return opt.Sequentialise(p, first, second)
}

// ReplaceThread lifts a transformed fragment back into a program.
func ReplaceThread(p *Program, ti int, f Fragment) *Program {
	return opt.ReplaceThread(p, ti, f)
}

// TransformationSound reports whether transformed introduces no
// behaviours original forbids (outcome-set inclusion), returning the
// offending outcomes otherwise. This is the semantic ground truth behind
// the syntactic rules.
func TransformationSound(original, transformed *Program) (bool, []Outcome, error) {
	return opt.SemanticallyValid(original, transformed)
}
