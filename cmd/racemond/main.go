// Command racemond is the race-monitoring service: a long-running TCP
// server that accepts many concurrent wire-format trace sessions (one
// monitor or pipeline per session), checkpoints each session into a
// per-session ring of LDCK snapshot files, recovers every session from
// its newest valid ring entry after a crash, and sheds load explicitly
// when full. See internal/service for the protocol and the fault
// model.
//
// Usage:
//
//	racemond [-addr HOST:PORT] [-ckpt DIR] [-ckpt-every N] [-ckpt-ring K]
//	         [-max-sessions M] [-shards S] [-read-timeout D]
//	         [-idle-timeout D] [-retry-after D] [-stats-addr ADDR]
//	         [-quiet]
//
//	racemond -drive N -addr HOST:PORT [-events E] [-threads T]
//	         [-policy P] [-seed-base S] [-locs L] [-atomics A] [-ra R]
//	         [-stale PCT] [-halts] [-attempts A] [-backoff D] [-json]
//	         [-golden FILE] [-update-golden]
//
// The first form serves. The second is the load driver the CI smoke and
// the chaos drills use: it generates N deterministic schedgen traces
// (seeds seed-base .. seed-base+N-1), streams them as N concurrent
// sessions through the full client (bounded exponential backoff,
// resume-from-checkpoint), and prints one JSON document of the per-
// session results. Because every session's outcome is deterministic in
// its seed, the document can be checked against a committed golden —
// including across a server kill -9 + restart in the middle of the
// drive, which is exactly what the CI job does.
//
// -stats-addr serves GET /stats (aggregate + ?session=ID views; see
// service.StatsHandler) plus expvar and pprof.
package main

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"reflect"
	"sort"
	"sync"
	"syscall"
	"time"

	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/schedgen"
	"localdrf/internal/service"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racemond: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7341", "listen address (serve mode) or server address (-drive)")
	ckptDir := flag.String("ckpt", "", "checkpoint-ring root directory ('' = no checkpointing)")
	ckptEvery := flag.Uint64("ckpt-every", 100_000, "checkpoint a session every N monitored events")
	ckptRing := flag.Int("ckpt-ring", 3, "snapshot generations kept per session")
	maxSessions := flag.Int("max-sessions", 64, "concurrently attached session cap (excess gets busy retry-after)")
	shards := flag.Int("shards", 1, "race back-ends per session (1 = sequential monitor)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "per-read ingest deadline (slow-loris bound)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "evict detached session bookkeeping after this idle time")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint sent with busy rejections")
	statsAddr := flag.String("stats-addr", "", "serve /stats, expvar and pprof on this address")
	quiet := flag.Bool("quiet", false, "suppress per-session log lines")

	drive := flag.Int("drive", 0, "client mode: stream N concurrent generated sessions and print their results")
	events := flag.Int("events", 250_000, "-drive: schedule length per session")
	threads := flag.Int("threads", 8, "-drive: thread count of the generated programs")
	policy := flag.String("policy", "bursty", "-drive: scheduling policy fair|unfair|bursty")
	seedBase := flag.Int64("seed-base", 1, "-drive: session i uses seed seed-base+i")
	locs := flag.Int("locs", 48, "-drive: nonatomic location count")
	atomics := flag.Int("atomics", 8, "-drive: atomic location count")
	ra := flag.Int("ra", 8, "-drive: release-acquire location count")
	stale := flag.Int("stale", 10, "-drive: percent of stale reads")
	halts := flag.Bool("halts", false, "-drive: emit thread-retirement events")
	attempts := flag.Int("attempts", 30, "-drive: connection attempts per session (rides through restarts)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "-drive: initial retry backoff")
	asJSON := flag.Bool("json", false, "-drive: emit the results as JSON (default: a summary line)")
	golden := flag.String("golden", "", "-drive: compare the deterministic results against this golden JSON")
	updateGolden := flag.Bool("update-golden", false, "-drive: rewrite the -golden file instead of comparing")
	flag.Parse()

	if *drive > 0 {
		runDrive(driveParams{
			addr: *addr, n: *drive, events: *events, threads: *threads,
			policy: *policy, seedBase: *seedBase, locs: *locs, atomics: *atomics,
			ra: *ra, stale: *stale, halts: *halts, attempts: *attempts,
			backoff: *backoff, asJSON: *asJSON, golden: *golden, update: *updateGolden,
		})
		return
	}

	cfg := service.Config{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		CheckpointRing:  *ckptRing,
		MaxSessions:     *maxSessions,
		Shards:          *shards,
		ReadTimeout:     *readTimeout,
		IdleTimeout:     *idleTimeout,
		RetryAfter:      *retryAfter,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "racemond: "+format+"\n", args...)
		}
	}
	srv := service.New(cfg)
	if *statsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(*statsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "racemond: stats endpoint: %v\n", err)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "racemond: shutting down (attached sessions revert to their last checkpoint)")
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "racemond: serving on %s (ckpt=%q every=%d ring=%d max-sessions=%d shards=%d)\n",
		*addr, *ckptDir, *ckptEvery, *ckptRing, *maxSessions, *shards)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatalf("%v", err)
	}
}

// ---- drive mode ----

type driveParams struct {
	addr     string
	n        int
	events   int
	threads  int
	policy   string
	seedBase int64
	locs     int
	atomics  int
	ra       int
	stale    int
	halts    bool
	attempts int
	backoff  time.Duration
	asJSON   bool
	golden   string
	update   bool
}

// driveDoc is the drive's output: the deterministic per-session results
// plus run-dependent aggregates (which the golden comparison excludes).
type driveDoc struct {
	Sessions     []service.SessionResult `json:"sessions"`
	TotalEvents  uint64                  `json:"total_events"`
	ElapsedNs    int64                   `json:"elapsed_ns"`
	EventsPerSec float64                 `json:"events_per_sec"`
	Resumes      int                     `json:"resumes"`
}

// driveGolden is the deterministic subset compared against the golden.
type driveGolden struct {
	Sessions []goldenSession `json:"sessions"`
}

type goldenSession struct {
	Session   string             `json:"session"`
	Events    uint64             `json:"events"`
	RaceCount int                `json:"race_count"`
	Races     []service.RaceJSON `json:"races"`
}

// genTrace encodes session i's deterministic wire-v2 trace.
func (dp driveParams) genTrace(i int) []byte {
	pol, err := schedgen.ParsePolicy(dp.policy)
	if err != nil {
		fatalf("%v", err)
	}
	seed := dp.seedBase + int64(i)
	cfg := progsynth.ScaledDefaults()
	cfg.Threads = dp.threads
	cfg.NonAtomic = dp.locs
	cfg.Atomics = dp.atomics
	cfg.RAs = dp.ra
	cfg.Iters = cfg.IterationsFor(dp.events)
	p := progsynth.Scaled(seed, cfg)
	tb := monitor.NewTable(p)
	var buf bytes.Buffer
	opts := schedgen.Options{
		Policy: pol, Seed: seed, MaxEvents: dp.events,
		StaleReadPct: dp.stale, EmitHalts: dp.halts,
	}
	if _, _, err := schedgen.Encode(&buf, tb.Program(), tb, opts, monitor.BinaryV2); err != nil {
		fatalf("generate session %d: %v", i, err)
	}
	return buf.Bytes()
}

func runDrive(dp driveParams) {
	traces := make([][]byte, dp.n)
	var genWG sync.WaitGroup
	for i := range traces {
		genWG.Add(1)
		go func(i int) {
			defer genWG.Done()
			traces[i] = dp.genTrace(i)
		}(i)
	}
	genWG.Wait()

	results := make([]*service.SessionResult, dp.n)
	errs := make([]error, dp.n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &service.Client{
				Addr:     dp.addr,
				Session:  fmt.Sprintf("drive-%d", dp.seedBase+int64(i)),
				Source:   func() (io.Reader, error) { return bytes.NewReader(traces[i]), nil },
				Attempts: dp.attempts,
				Backoff:  dp.backoff,
			}
			results[i], errs[i] = c.Run()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := driveDoc{ElapsedNs: elapsed.Nanoseconds()}
	failed := 0
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "racemond: session drive-%d: %v\n", dp.seedBase+int64(i), errs[i])
			failed++
			continue
		}
		doc.Sessions = append(doc.Sessions, *res)
		doc.TotalEvents += res.Events
		doc.Resumes += res.Resumed
	}
	sort.Slice(doc.Sessions, func(i, j int) bool { return doc.Sessions[i].Session < doc.Sessions[j].Session })
	doc.EventsPerSec = float64(doc.TotalEvents) / elapsed.Seconds()
	if failed > 0 {
		fatalf("%d of %d sessions failed", failed, dp.n)
	}

	if dp.golden != "" {
		if err := checkDriveGolden(dp.golden, dp.update, doc); err != nil {
			fatalf("%v", err)
		}
	}
	if dp.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("racemond drive: %d sessions, %d events, %.1f ms, %.2fM ev/s aggregate, %d resumes\n",
		dp.n, doc.TotalEvents, float64(elapsed.Nanoseconds())/1e6, doc.EventsPerSec/1e6, doc.Resumes)
}

// checkDriveGolden compares (or rewrites) the deterministic subset of
// the drive results against a committed golden file.
func checkDriveGolden(path string, update bool, doc driveDoc) error {
	got := driveGolden{Sessions: []goldenSession{}}
	for _, s := range doc.Sessions {
		got.Sessions = append(got.Sessions, goldenSession{
			Session: s.Session, Events: s.Events, RaceCount: s.RaceCount, Races: s.Races,
		})
	}
	if update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	var want driveGolden
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("golden %s: %w", path, err)
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("drive results differ from golden %s (regenerate with -update-golden if the change is intended)", path)
	}
	return nil
}
