// Command racemon runs the online happens-before race monitor over a
// long concrete schedule — the million-event workload the exhaustive
// checkers cannot reach. The schedule is either generated in-process
// (from a scaled random program) or ingested from a raw trace in the
// wire format of internal/monitor.
//
// Usage:
//
//	racemon [-events N] [-threads K] [-policy fair|unfair|bursty]
//	        [-seed S] [-shards M] [-locs L] [-atomics A] [-ra R]
//	        [-stale PCT] [-skew S] [-halts] [-json] [-pipeline] [-stream]
//	        [-rebalance] [-predicate hb|syncp|short:k] [-trace FILE|-]
//	        [-parsers N] [-emit FILE] [-format binary|text] [-wire 1|2]
//	        [-golden FILE] [-update-golden] [-checkpoint FILE]
//	        [-checkpoint-at N] [-resume FILE] [-stats-addr ADDR]
//	        [-stats-interval DUR] [-stats-linger DUR]
//
// Modes:
//
//	(default)  generate the schedule into memory, then monitor it —
//	           with -shards M > 1, through the two-stage parallel
//	           pipeline (one sync front-end pass, M race back-ends;
//	           identical reports at any shard count).
//	-pipeline  generate and monitor in one fused pass through the
//	           parallel pipeline, never materialising the event slice:
//	           -shards M is the race back-end count. The multicore
//	           ingest mode.
//	-stream    generate and monitor in one fused pass on a single
//	           sequential monitor: memory stays O(locations + threads²)
//	           plus the windowed live RA-message set, regardless of
//	           -events. Requires -shards 1.
//	-trace F   ingest a raw trace (binary v1/v2 or text wire format,
//	           sniffed automatically) from file F, or from stdin with
//	           "-", and monitor it in one bounded-memory pass (v2
//	           frames are decoded and fed a batch at a time).
//	           Generation flags are ignored.
//	-emit F    generate the schedule and write it to F in the wire
//	           format (-format binary|text; -wire selects the binary
//	           version, default 2 = delta-compressed frames) without
//	           monitoring — the producer side of -trace.
//
// -halts appends a thread-retirement event when a generated thread runs
// to completion (wire v2/text and the monitor understand it; it never
// changes reports, only RA retention).
//
// -predicate selects the race predicate the monitor decides (see
// internal/monitor's predictive-detection overview): "hb" (the
// default) reports happens-before races over the observed trace;
// "syncp" reports sync-preserving predictable races — a superset of
// the hb set, witnessing races a feasible reordering of the observed
// trace could expose; "short:k" (k ≥ 1) restricts syncp to access
// pairs at most k events apart, bounding the candidate state to O(k)
// per location regardless of trace length. Every monitoring mode
// accepts it (-stream, -pipeline, -trace, sharded batch); reports
// stay identical at any shard count. -emit does not monitor, so
// combining it with a non-default -predicate is an error. A
// checkpoint records its monitor's predicate, which is authoritative
// on -resume (a conflicting -predicate is ignored with a warning).
// With -json the summary carries the predicate and, for short:k, the
// window's live/peak candidate counts.
//
// -skew S redirects each generated nonatomic access to a location drawn
// from a Zipf distribution with exponent S (0 = uniform, the default) —
// hot-location workloads for the sharded pipeline. -rebalance enables
// the pipeline's skew-adaptive router, which migrates hot locations
// between race back-ends at GC barriers (reports stay identical; only
// the load split changes). -parsers N decodes a -trace's v2 frames on N
// parallel workers feeding the ordering sequencer; it falls back to the
// sequential decoder for v1/text traces and for runs that checkpoint or
// resume (the reader continuation is a sequential-decoder construct).
//
// Checkpoint/resume: -checkpoint FILE snapshots the monitor (or
// pipeline front-end + back-ends) in the LDCK format of
// internal/monitor — at the end of the run, or, with -checkpoint-at N,
// after the N-th monitored event, stopping there. Works in the -stream,
// -pipeline and -trace modes. -resume FILE (with -trace) restores the
// snapshot and continues over the trace: a checkpoint taken by -trace
// carries the reader's byte offset and v2 delta context, so the resumed
// run seeks straight to where monitoring stopped; a checkpoint taken by
// -stream/-pipeline carries no offset, so the resumed run skips the
// already-monitored prefix by count (the trace must therefore be the
// same event stream, e.g. the -emit of the same seed and parameters).
// Resuming with -shards M > 1 routes every restored location's state to
// the back-end owning it. The resumed report set is byte-identical to a
// run that never stopped. A snapshot records whether its run had a
// static prefilter active, but not the mask itself (it is derived from
// the generated program, which a trace does not carry) — so resuming a
// prefiltered run warns that monitoring continues unfiltered, and
// -static-prefilter alongside -resume warns that it is ignored rather
// than silently dropping the flag.
//
// Telemetry: -stats-addr ADDR serves the live obs-registry snapshot
// over HTTP while the run ingests — GET /stats returns the merged
// monitor.*/pipeline.*/parse.* metrics as JSON plus per-counter rates
// since the previous scrape; /debug/vars is expvar; /debug/pprof/* are
// the standard profile handlers. -stats-interval DUR prints a progress
// line (events, throughput, races, RA window, ring occupancy) to stderr
// every DUR. -stats-linger DUR keeps the endpoint alive after the run
// so short CI runs can be scraped. With -json, the summary's "stats"
// object carries the final exact snapshot. Scrapes read atomics the hot
// path publishes at GC sweeps and batch boundaries — they never lock
// the monitor.
//
// Examples:
//
//	racemon -pipeline -shards 4 -events 5000000 -json
//	racemon -stream -events 5000000 -json
//	racemon -emit trace.bin -events 100000 && racemon -trace trace.bin
//	racemon -emit trace.bin -wire 1 -events 100000   # v1 for old readers
//	racemon -emit - -format text -events 50 -threads 2 | head
//	racemon -trace - < trace.bin
//	racemon -trace trace.bin -checkpoint ck.ldck -checkpoint-at 50000
//	racemon -trace trace.bin -resume ck.ldck -shards 4 -json
//
// The monitor reports every distinct data race (def. 9/10 pairs,
// deduplicated by location, thread pair and access kinds). -json emits a
// machine-readable summary including monitoring events/sec and the RA
// message retention stats (live, peak, collected) of the windowed GC.
// -golden FILE compares the deterministic report set against a committed
// golden JSON and exits nonzero on any difference (CI uses this);
// -update-golden rewrites FILE instead.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"slices"
	"time"

	"localdrf/internal/monitor"
	"localdrf/internal/obs"
	"localdrf/internal/predict"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
	"localdrf/internal/staticrace"
)

type result struct {
	Program      string  `json:"program"`
	Mode         string  `json:"mode"`
	Threads      int     `json:"threads"`
	Policy       string  `json:"policy,omitempty"`
	Seed         int64   `json:"seed"`
	Events       int     `json:"events"`
	Completed    bool    `json:"completed"`
	Shards       int     `json:"shards"`
	Parsers      int     `json:"parsers,omitempty"`
	GenNs        int64   `json:"gen_ns"`
	MonitorNs    int64   `json:"monitor_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	RaceCount    int     `json:"race_count"`
	// The RA retention stats are omitted when no single monitor produced
	// them (sharded runs keep their monitors internal) or when they are
	// genuinely zero.
	RALive      int    `json:"ra_live,omitempty"`
	RALivePeak  int    `json:"ra_live_peak,omitempty"`
	RACollected uint64 `json:"ra_collected,omitempty"`
	// Predictive-detection results. Predicate is the decided race
	// predicate ("syncp", "short:k"); omitted for the default hb so
	// existing consumers and goldens see unchanged JSON. The window
	// fields are the short:k candidate-window telemetry (peak is the
	// bounded-memory claim, measured); present only when a single
	// front-end owns the window (the batch-sharded wrapper keeps its
	// pipeline internal).
	Predicate    string `json:"predicate,omitempty"`
	WindowK      int    `json:"window_k,omitempty"`
	WindowLive   int    `json:"window_live,omitempty"`
	WindowPeak   int    `json:"window_peak,omitempty"`
	WindowPruned uint64 `json:"window_pruned,omitempty"`
	// Static analysis results, present with -static-prefilter: how many
	// nonatomic locations the sound static pass certified race-free
	// (their checker work is skipped) vs left in the may-race set.
	StaticCertified int           `json:"static_certified,omitempty"`
	StaticMayRace   int           `json:"static_may_race,omitempty"`
	Races           []raceJSON    `json:"races,omitempty"`
	Locations       locationsJSON `json:"locations"`
	// Stats is the final telemetry snapshot of the run's obs registries
	// (monitor.*, pipeline.*, parse.* — see internal/monitor's metric
	// catalogue). Absent in modes with no accessible sink (emit, the
	// batch-sharded wrapper).
	Stats *obs.Snapshot `json:"stats,omitempty"`
}

type raceJSON struct {
	Loc     string `json:"loc"`
	ThreadI int    `json:"thread_i"`
	ThreadJ int    `json:"thread_j"`
	OpI     string `json:"op_i"`
	OpJ     string `json:"op_j"`
}

type locationsJSON struct {
	NonAtomic int `json:"nonatomic"`
	Atomic    int `json:"atomic"`
	RA        int `json:"ra"`
}

// goldenDoc is the deterministic subset of the JSON summary that the
// -golden flag compares (timings and throughput vary run to run; the
// report set must not).
type goldenDoc struct {
	RaceCount int        `json:"race_count"`
	Races     []raceJSON `json:"races"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racemon: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	events := flag.Int("events", 1_000_000, "schedule length in events")
	threads := flag.Int("threads", 8, "thread count of the generated program")
	policy := flag.String("policy", "fair", "scheduling policy: fair|unfair|bursty")
	seed := flag.Int64("seed", 1, "generator seed (program and schedule)")
	shards := flag.Int("shards", 1, "location shards monitored in parallel")
	locs := flag.Int("locs", 48, "nonatomic location count")
	atomics := flag.Int("atomics", 8, "atomic location count")
	ra := flag.Int("ra", 8, "release-acquire location count")
	stale := flag.Int("stale", 10, "percent of reads returning stale values")
	skew := flag.Float64("skew", 0, "Zipf exponent skewing generated nonatomic accesses toward hot locations (0 = uniform)")
	rebalance := flag.Bool("rebalance", false, "migrate hot locations between pipeline back-ends at GC barriers (sharded modes)")
	predicateS := flag.String("predicate", "hb", "race predicate: hb (observed-trace happens-before), syncp (sync-preserving predictable races) or short:k (syncp within k events)")
	staticPrefilter := flag.Bool("static-prefilter", false, "run the sound static may-race analysis over the generated program and skip checker work for certified locations (report set unchanged)")
	privateLocs := flag.Int("private-locs", 0, "thread-private nonatomic locations per thread (certifiable by -static-prefilter)")
	privatePct := flag.Int("private-pct", 0, "percent of nonatomic data traffic redirected to the accessing thread's private pool")
	parsers := flag.Int("parsers", 1, "parallel trace-decode workers for -trace (v2 traces; ≥ 2 enables the parallel front-end)")
	asJSON := flag.Bool("json", false, "emit a JSON summary")
	maxRaces := flag.Int("max-races", 20, "race reports listed in the output (0 = all)")
	pipeline := flag.Bool("pipeline", false, "generate and monitor in one fused pass through the parallel pipeline (-shards = back-end count)")
	stream := flag.Bool("stream", false, "generate and monitor in one pass (no materialised schedule)")
	halts := flag.Bool("halts", false, "emit thread-retirement events when generated threads complete")
	traceFile := flag.String("trace", "", "monitor a wire-format trace from FILE ('-' = stdin) instead of generating")
	emitFile := flag.String("emit", "", "generate and write the wire-format trace to FILE ('-' = stdout) instead of monitoring")
	formatS := flag.String("format", "binary", "wire format for -emit: binary|text")
	wire := flag.Int("wire", 2, "binary wire version for -emit: 1 (per-event) or 2 (delta-compressed frames)")
	golden := flag.String("golden", "", "compare the deterministic report set against this golden JSON file")
	updateGolden := flag.Bool("update-golden", false, "rewrite the -golden file instead of comparing")
	checkpointFile := flag.String("checkpoint", "", "write a monitor snapshot to FILE (at end of run, or at -checkpoint-at)")
	checkpointAt := flag.Uint64("checkpoint-at", 0, "snapshot after this many monitored events and stop (0 = at end)")
	resumeFile := flag.String("resume", "", "restore the monitor from this snapshot before ingesting (-trace only)")
	statsAddr := flag.String("stats-addr", "", "serve live telemetry over HTTP on this address (GET /stats, /debug/vars, /debug/pprof)")
	statsInterval := flag.Duration("stats-interval", 0, "print a telemetry progress line to stderr at this interval (0 = off)")
	statsLinger := flag.Duration("stats-linger", 0, "keep the -stats-addr endpoint alive this long after the run finishes")
	flag.Parse()

	pol, err := schedgen.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	format, err := monitor.ParseFormat(*formatS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, err := predict.Parse(*predicateS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racemon: "+err.Error())
		os.Exit(2)
	}
	if *threads < 1 || *events < 1 || *locs < 1 || *atomics < 0 || *ra < 0 || *shards < 1 {
		fmt.Fprintln(os.Stderr, "racemon: -events, -threads, -locs and -shards must be ≥ 1 (-atomics/-ra ≥ 0)")
		os.Exit(2)
	}
	if *parsers < 1 {
		fmt.Fprintln(os.Stderr, "racemon: -parsers must be ≥ 1")
		os.Exit(2)
	}
	if *skew < 0 {
		fmt.Fprintln(os.Stderr, "racemon: -skew must be ≥ 0")
		os.Exit(2)
	}
	if *wire != 1 && *wire != 2 {
		fmt.Fprintln(os.Stderr, "racemon: -wire must be 1 or 2")
		os.Exit(2)
	}
	if format == monitor.Binary && *wire == 2 {
		format = monitor.BinaryV2
	}
	modeFlags := 0
	for _, on := range []bool{*pipeline, *stream, *traceFile != "", *emitFile != ""} {
		if on {
			modeFlags++
		}
	}
	if modeFlags > 1 {
		fmt.Fprintln(os.Stderr, "racemon: -pipeline, -stream, -trace and -emit are mutually exclusive")
		os.Exit(2)
	}
	if *stream && *shards != 1 {
		fmt.Fprintln(os.Stderr, "racemon: -stream monitors in a single pass; -shards must be 1")
		os.Exit(2)
	}
	if *resumeFile != "" && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "racemon: -resume continues over a recorded trace; it needs -trace FILE")
		os.Exit(2)
	}
	if *checkpointAt > 0 && *checkpointFile == "" {
		fmt.Fprintln(os.Stderr, "racemon: -checkpoint-at needs -checkpoint FILE")
		os.Exit(2)
	}
	if *checkpointFile != "" && !*stream && !*pipeline && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "racemon: -checkpoint needs a streaming mode (-stream, -pipeline or -trace)")
		os.Exit(2)
	}
	if *updateGolden && *golden == "" {
		fmt.Fprintln(os.Stderr, "racemon: -update-golden needs -golden FILE")
		os.Exit(2)
	}
	if *golden != "" && *emitFile != "" {
		fmt.Fprintln(os.Stderr, "racemon: -emit does not monitor, so there is no report set for -golden")
		os.Exit(2)
	}
	if *statsLinger > 0 && *statsAddr == "" {
		fmt.Fprintln(os.Stderr, "racemon: -stats-linger keeps the HTTP endpoint alive; it needs -stats-addr")
		os.Exit(2)
	}
	if *privateLocs < 0 || *privatePct < 0 || *privatePct > 100 {
		fmt.Fprintln(os.Stderr, "racemon: -private-locs must be ≥ 0 and -private-pct in 0..100")
		os.Exit(2)
	}
	if *emitFile != "" && spec.Pred != monitor.PredHB {
		fmt.Fprintln(os.Stderr, "racemon: -emit does not monitor, so -predicate has no effect; drop it or monitor the trace instead")
		os.Exit(2)
	}
	fatalMsg, warn := staticFilterDecision(*staticPrefilter, *traceFile, *emitFile, *resumeFile)
	if fatalMsg != "" {
		fmt.Fprintln(os.Stderr, "racemon: "+fatalMsg)
		os.Exit(2)
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, "racemon: "+warn)
	}

	if *statsAddr != "" {
		startStats(*statsAddr)
		if *statsLinger > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "racemon: stats endpoint lingering %s\n", *statsLinger)
				time.Sleep(*statsLinger)
			}()
		}
	}
	var stopProgress chan struct{}
	if *statsInterval > 0 {
		stopProgress = make(chan struct{})
		go progressLoop(*statsInterval, stopProgress)
	}

	gp := genParams{
		policy: pol, seed: *seed, events: *events, threads: *threads,
		locs: *locs, atomics: *atomics, ra: *ra, stale: *stale, halts: *halts,
		skew: *skew, privateLocs: *privateLocs, privatePct: *privatePct,
		prefilter: *staticPrefilter,
	}
	ck := ckParams{file: *checkpointFile, at: *checkpointAt}
	var res result
	var reports []race.Report
	switch {
	case *traceFile != "":
		par, warn := parallelParseDecision(*parsers, *resumeFile, ck.file)
		if warn != "" {
			fmt.Fprintln(os.Stderr, "racemon: "+warn)
		}
		if par {
			res, reports = runTraceParallel(*traceFile, *shards, *parsers, *rebalance, spec)
		} else {
			res, reports = runTrace(*traceFile, *shards, *resumeFile, ck, *rebalance, spec)
		}
	case *emitFile != "":
		res = runEmit(*emitFile, format, gp)
	case *pipeline:
		res, reports = runPipeline(gp, *shards, *rebalance, ck, spec)
	default:
		res, reports = runGenerated(gp, *shards, *stream, *rebalance, ck, spec)
	}
	if stopProgress != nil {
		close(stopProgress)
	}

	listed := reports
	if *maxRaces > 0 && len(listed) > *maxRaces {
		listed = listed[:*maxRaces]
	}
	for _, r := range listed {
		res.Races = append(res.Races, toJSON(r))
	}

	if *golden != "" {
		if err := checkGolden(*golden, *updateGolden, reports); err != nil {
			fatalf("%v", err)
		}
	}

	// When the trace itself goes to stdout (-emit -), the summary must
	// not be interleaved with it.
	out := os.Stdout
	if *emitFile == "-" {
		out = os.Stderr
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Fprintf(out, "program   %s  (%d threads; %d nonatomic / %d atomic / %d ra locations)\n",
		res.Program, res.Threads, res.Locations.NonAtomic, res.Locations.Atomic, res.Locations.RA)
	if res.Mode == "emit" {
		fmt.Fprintf(out, "emitted   %d events (%s wire format)\n", res.Events, format)
		return
	}
	if res.Policy != "" {
		fmt.Fprintf(out, "schedule  %d events, policy=%s, seed=%d, stale=%d%%\n",
			res.Events, res.Policy, res.Seed, *stale)
	} else {
		fmt.Fprintf(out, "trace     %d events\n", res.Events)
	}
	if res.GenNs > 0 {
		fmt.Fprintf(out, "generate  %8.1f ms\n", float64(res.GenNs)/1e6)
	}
	fmt.Fprintf(out, "monitor   %8.1f ms  (%.1fM events/sec, %d shard(s), mode=%s)\n",
		float64(res.MonitorNs)/1e6, res.EventsPerSec/1e6, res.Shards, res.Mode)
	if res.Shards == 1 || res.Mode == "pipeline" {
		// The pipeline's sync front-end owns the RA window, so its stats
		// are visible at any shard count; the batch-sharded wrapper keeps
		// its pipeline internal.
		fmt.Fprintf(out, "ra msgs   live=%d peak=%d collected=%d (windowed GC)\n",
			res.RALive, res.RALivePeak, res.RACollected)
	}
	if res.Predicate != "" {
		fmt.Fprintf(out, "predict   predicate=%s", res.Predicate)
		if res.WindowK > 0 {
			fmt.Fprintf(out, "  window live=%d peak=%d pruned=%d", res.WindowLive, res.WindowPeak, res.WindowPruned)
		}
		fmt.Fprintln(out)
	}
	if res.StaticCertified+res.StaticMayRace > 0 {
		fmt.Fprintf(out, "static    %d certified (checker work skipped), %d may-race\n",
			res.StaticCertified, res.StaticMayRace)
	}
	fmt.Fprintf(out, "races     %d distinct\n", res.RaceCount)
	for _, r := range listed {
		fmt.Fprintf(out, "    %s\n", r)
	}
	if len(listed) < len(reports) {
		fmt.Fprintf(out, "    … and %d more (raise -max-races to list)\n", len(reports)-len(listed))
	}
}

// genParams bundles the generated-schedule knobs, so the mode runners
// cannot silently transpose adjacent int arguments.
type genParams struct {
	policy      schedgen.Policy
	seed        int64
	events      int
	threads     int
	locs        int
	atomics     int
	ra          int
	stale       int
	halts       bool
	skew        float64
	privateLocs int
	privatePct  int
	prefilter   bool
}

// program builds the generator-side program and table shared by the
// generated-schedule modes.
func (gp genParams) program() (*monitor.Table, string) {
	cfg := progsynth.ScaledDefaults()
	cfg.Threads = gp.threads
	cfg.NonAtomic = gp.locs
	cfg.Atomics = gp.atomics
	cfg.RAs = gp.ra
	cfg.PrivateLocs = gp.privateLocs
	cfg.PrivatePct = gp.privatePct
	// Size the loop counts so the program cannot halt before the schedule
	// reaches the requested length.
	cfg.Iters = cfg.IterationsFor(gp.events)
	p := progsynth.Scaled(gp.seed, cfg)
	return monitor.NewTable(p), p.Name
}

// staticMask runs the static analysis when -static-prefilter is on,
// records the verdict counts in res, and returns the monitor skip mask
// (nil when disabled or when nothing certified).
func (gp genParams) staticMask(tb *monitor.Table, res *result) []bool {
	if !gp.prefilter {
		return nil
	}
	rep := staticrace.Analyze(tb.Program())
	res.StaticCertified = len(rep.Certified)
	res.StaticMayRace = len(rep.MayRace)
	return monitor.StaticFilter(tb.Decls(), rep.RaceFree)
}

// options is the schedgen configuration of the parameters.
func (gp genParams) options() schedgen.Options {
	return schedgen.Options{
		Policy: gp.policy, Seed: gp.seed, MaxEvents: gp.events,
		StaleReadPct: gp.stale, EmitHalts: gp.halts, LocSkew: gp.skew,
	}
}

// ckParams bundles the checkpoint flags: where to write the snapshot
// and at which absolute monitored-event index to stop (0 = end of run).
type ckParams struct {
	file string
	at   uint64
}

// errCheckpointStop aborts generation cleanly once -checkpoint-at is
// reached.
var errCheckpointStop = errors.New("checkpoint reached")

// writeSnapshot writes one snapshot via the given encoder.
func writeSnapshot(path string, snap func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("checkpoint: %v", err)
	}
	if err := snap(f); err != nil {
		fatalf("checkpoint: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("checkpoint: %v", err)
	}
}

// runPipeline is the fused parallel mode: schedgen batches feed the
// two-stage pipeline directly — one sync front-end pass, shards race
// back-ends, no materialised schedule.
func runPipeline(gp genParams, shards int, rebalance bool, ck ckParams, spec predict.Spec) (result, []race.Report) {
	tb, name := gp.program()
	res := result{
		Program: name, Mode: "pipeline", Threads: tb.Threads(), Policy: gp.policy.String(),
		Seed: gp.seed, Shards: shards,
		Locations: locationsJSON{NonAtomic: gp.locs, Atomic: gp.atomics, RA: gp.ra},
	}
	pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), monitor.PipelineConfig{
		Shards: shards, Rebalance: rebalance, StaticFilter: gp.staticMask(tb, &res),
		Predicate: spec.Pred, WindowK: spec.K,
	})
	tel.attach(pl.Obs())
	start := time.Now()
	completed, err := schedgen.StreamBatch(tb.Program(), tb, gp.options(), 0, func(evs []monitor.Event) error {
		if ck.at > 0 {
			if remaining := ck.at - pl.Events(); uint64(len(evs)) >= remaining {
				pl.StepBatch(evs[:remaining])
				return errCheckpointStop
			}
		}
		pl.StepBatch(evs)
		return nil
	})
	if err == errCheckpointStop {
		err, completed = nil, false
	}
	if err != nil {
		fatalf("pipeline: %v", err)
	}
	if ck.file != "" {
		writeSnapshot(ck.file, pl.Snapshot)
	}
	reports := pl.Finish()
	res.MonitorNs = time.Since(start).Nanoseconds()
	res.Completed = completed
	res.Events = int(pl.Events())
	st := pl.RAStats()
	res.RALive, res.RALivePeak, res.RACollected = st.Live, st.Peak, st.Collected
	res.EventsPerSec = float64(res.Events) / (float64(res.MonitorNs) / 1e9)
	res.RaceCount = pl.RaceCount()
	fillPredict(&res, pl.Predicate(), pl.WindowK(), pl.WindowStats())
	stats := pl.Stats()
	res.Stats = &stats
	return res, reports
}

// runGenerated is the in-process generation path: the batch (and
// optionally sharded) mode, or -stream's single fused pass.
func runGenerated(gp genParams, shards int, stream, rebalance bool, ck ckParams, spec predict.Spec) (result, []race.Report) {
	tb, name := gp.program()
	opt := gp.options()
	res := result{
		Program: name, Threads: tb.Threads(), Policy: gp.policy.String(), Seed: gp.seed,
		Shards: shards, Locations: locationsJSON{NonAtomic: gp.locs, Atomic: gp.atomics, RA: gp.ra},
	}
	mask := gp.staticMask(tb, &res)

	if stream {
		res.Mode = "stream"
		m := monitor.New(tb.Threads(), tb.Decls())
		spec.Apply(m)
		m.SetStaticFilter(mask)
		tel.attach(m.Obs())
		start := time.Now()
		completed, err := schedgen.Stream(tb.Program(), tb, opt, func(e monitor.Event) error {
			m.Step(e)
			if ck.at > 0 && m.Events() >= ck.at {
				return errCheckpointStop
			}
			return nil
		})
		if err == errCheckpointStop {
			err, completed = nil, false
		}
		if err != nil {
			fatalf("stream: %v", err)
		}
		if ck.file != "" {
			writeSnapshot(ck.file, m.Snapshot)
		}
		res.MonitorNs = time.Since(start).Nanoseconds()
		res.Completed = completed
		res.Events = int(m.Events())
		fill(&res, m)
		fillPredict(&res, m.Predicate(), m.WindowK(), m.WindowStats())
		stats := m.Stats()
		res.Stats = &stats
		return res, m.Reports()
	}

	res.Mode = "batch"
	genStart := time.Now()
	streamEv, completed, err := schedgen.Generate(tb.Program(), tb, opt, make([]monitor.Event, 0, gp.events))
	if err != nil {
		fatalf("generate: %v", err)
	}
	res.GenNs = time.Since(genStart).Nanoseconds()
	res.Completed = completed
	res.Events = len(streamEv)

	monStart := time.Now()
	var reports []race.Report
	if shards == 1 {
		// Run the monitor directly so the RA retention stats are visible.
		m := monitor.New(tb.Threads(), tb.Decls())
		spec.Apply(m)
		m.SetStaticFilter(mask)
		tel.attach(m.Obs())
		for _, e := range streamEv {
			m.Step(e)
		}
		reports = m.Reports()
		fill(&res, m)
		fillPredict(&res, m.Predicate(), m.WindowK(), m.WindowStats())
		stats := m.Stats()
		res.Stats = &stats
	} else {
		reports, err = monitor.ShardedRacesConfig(tb.Threads(), tb.Decls(), streamEv, shards, 0,
			monitor.PipelineConfig{Rebalance: rebalance, StaticFilter: mask,
				Predicate: spec.Pred, WindowK: spec.K})
		if err != nil {
			fatalf("monitor: %v", err)
		}
		// The wrapper keeps its pipeline internal, so only the predicate
		// itself (not the window telemetry) is reportable.
		fillPredict(&res, spec.Pred, spec.K, monitor.WindowStats{})
	}
	res.MonitorNs = time.Since(monStart).Nanoseconds()
	res.EventsPerSec = float64(res.Events) / (float64(res.MonitorNs) / 1e9)
	res.RaceCount = len(reports)
	return res, reports
}

// traceSink abstracts the two ingestion targets of runTrace — a
// sequential monitor or a cfg.Shards pipeline — behind the operations
// the feeding loop needs. Everything but reports is promoted from the
// embedded monitor/pipeline, which share the method set.
type traceSink interface {
	Step(monitor.Event)
	StepBatch([]monitor.Event)
	Events() uint64
	RAStats() monitor.RAStats
	Predicate() monitor.Predicate
	WindowK() int
	WindowStats() monitor.WindowStats
	Snapshot(io.Writer) error
	SnapshotWithReader(io.Writer, monitor.ReaderCheckpoint) error
	Obs() *obs.Registry
	Stats() obs.Snapshot
	reports() []race.Report
}

type monitorSink struct{ *monitor.Monitor }

func (s monitorSink) reports() []race.Report { return s.Reports() }

type pipelineSink struct{ *monitor.Pipeline }

func (s pipelineSink) reports() []race.Report { return s.Finish() }

// headerEqual reports whether a snapshot was taken over the same
// program shape as the trace being resumed.
func headerEqual(a, b monitor.Header) bool {
	return a.Threads == b.Threads && slices.Equal(a.Decls, b.Decls)
}

// runTrace ingests a wire-format trace from a file or stdin — through a
// sequential monitor, or a parallel pipeline when shards > 1 —
// optionally resuming from a snapshot and/or checkpointing mid-ingest.
func runTrace(path string, shards int, resumePath string, ck ckParams, rebalance bool, spec predict.Spec) (result, []race.Report) {
	var rd io.Reader = os.Stdin
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		rd, name = f, path
	}
	start := time.Now()
	tr, err := monitor.NewTraceReader(rd)
	if err != nil {
		fatalf("trace: %v", err)
	}
	hdr := tr.Header()

	// Resume: restore the snapshot and position the reader — by byte
	// offset when the checkpoint was taken mid-ingest (it carries a
	// reader continuation), by event count otherwise (a -stream/-pipeline
	// checkpoint over the same generated stream).
	var snap *monitor.Snapshot
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			fatalf("resume: %v", err)
		}
		snap, err = monitor.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fatalf("resume: %v", err)
		}
		if !headerEqual(snap.Header(), hdr) {
			fatalf("resume: snapshot was taken over a different program shape than %s", name)
		}
		if rck, ok := snap.Reader(); ok {
			if err := tr.Resume(rck); err != nil {
				fatalf("resume: %v", err)
			}
		}
		if snap.StaticFiltered() {
			fmt.Fprintln(os.Stderr, "racemon: resume: the snapshotted run had a static prefilter active; the mask is not recorded, so monitoring continues unfiltered from here")
		}
	}
	var sink traceSink
	if shards > 1 {
		cfg := monitor.PipelineConfig{Shards: shards, Rebalance: rebalance,
			Predicate: spec.Pred, WindowK: spec.K}
		var pl *monitor.Pipeline
		if snap != nil {
			// The snapshot's predicate is authoritative; cfg's is ignored.
			pl = snap.Pipeline(cfg)
			if warn := predicateOverrideWarning(spec, pl.Predicate(), pl.WindowK()); warn != "" {
				fmt.Fprintln(os.Stderr, "racemon: "+warn)
			}
		} else {
			pl = monitor.NewPipeline(hdr.Threads, hdr.Decls, cfg)
		}
		sink = pipelineSink{pl}
	} else if snap != nil {
		m := snap.Monitor()
		if warn := predicateOverrideWarning(spec, m.Predicate(), m.WindowK()); warn != "" {
			fmt.Fprintln(os.Stderr, "racemon: "+warn)
		}
		sink = monitorSink{m}
	} else {
		m := tr.NewMonitor()
		spec.Apply(m)
		sink = monitorSink{m}
	}
	tel.attach(sink.Obs())
	if snap != nil {
		if _, ok := snap.Reader(); !ok {
			// No byte offset recorded: skip the already-monitored prefix
			// by count (works for every trace format).
			for skip := sink.Events(); skip > 0; skip-- {
				if _, ok, err := tr.Next(); err != nil || !ok {
					fatalf("resume: trace ends inside the %d already-monitored events (err=%v)", sink.Events(), err)
				}
			}
		}
	}

	// Completed records whether the run actually observed the end of
	// the trace (as opposed to stopping at -checkpoint-at — the run
	// cannot know whether more events follow without reading past the
	// checkpoint position, which would move the resumable offset).
	completed := true
	if ck.at > 0 {
		// Batch up to a frame's worth short of the stop position, then
		// step per event so the stop (and the reader checkpoint with its
		// mid-frame pending events) is exact. 1<<16 is the wire format's
		// maximum frame event count, so no batch can overshoot the stop.
		const maxBatch = 1 << 16
		var buf []monitor.Event
		for sink.Events()+maxBatch <= ck.at {
			batch, ok, err := tr.NextBatch(buf[:0])
			if err != nil {
				fatalf("trace: %v", err)
			}
			if !ok {
				break
			}
			sink.StepBatch(batch)
			buf = batch
		}
		for {
			if sink.Events() >= ck.at {
				completed = false
				break
			}
			e, ok, err := tr.Next()
			if err != nil {
				fatalf("trace: %v", err)
			}
			if !ok {
				break
			}
			sink.Step(e)
		}
	} else {
		// Batched ingestion: v2 traces decode a frame at a time; v1 and
		// text are batched by the reader. (An end-of-trace -checkpoint
		// needs no mid-stream precision, so it takes this path too.)
		var buf []monitor.Event
		for {
			batch, ok, err := tr.NextBatch(buf[:0])
			if err != nil {
				fatalf("trace: %v", err)
			}
			if !ok {
				break
			}
			sink.StepBatch(batch)
			buf = batch
		}
	}
	if ck.file != "" {
		writeSnapshot(ck.file, func(w io.Writer) error {
			rck, err := tr.Checkpoint()
			if err != nil {
				// Text traces carry no resumable offset; fall back to a
				// plain snapshot (resume then skips by count).
				return sink.Snapshot(w)
			}
			return sink.SnapshotWithReader(w, rck)
		})
	}

	reports := sink.reports()
	res := result{
		Program: "trace:" + name, Mode: "trace", Threads: hdr.Threads,
		Completed: completed, Shards: shards,
		MonitorNs: time.Since(start).Nanoseconds(),
		Events:    int(sink.Events()),
	}
	fillLocations(&res, hdr.Decls)
	fillStats(&res, sink.RAStats(), len(reports))
	fillPredict(&res, sink.Predicate(), sink.WindowK(), sink.WindowStats())
	stats := sink.Stats()
	res.Stats = &stats
	return res, reports
}

// predicateOverrideWarning: a checkpoint records its monitor's
// predicate, and on -resume that record is authoritative (the restored
// clocks and window only mean anything under it). When the command
// line asks for a different, non-default predicate, the user gets told
// the flag lost rather than discovering it from the report set.
func predicateOverrideWarning(requested predict.Spec, pred monitor.Predicate, k int) string {
	restored := predict.Spec{Pred: pred, K: k}
	if requested.Pred == monitor.PredHB || requested == restored {
		return ""
	}
	return fmt.Sprintf("-predicate %s ignored: the snapshot was taken under %s, which is authoritative on -resume", requested, restored)
}

// parallelParseDecision decides whether -trace ingest may use the
// parallel front-end, and returns a warning to print when -parsers > 1
// has to be dropped: checkpoint/resume rides the sequential reader's
// byte-offset continuation, which the parallel front-end cannot
// produce, so combining them silently falling back would hide a real
// performance cliff from the user.
func parallelParseDecision(parsers int, resumeFile, checkpointFile string) (parallel bool, warning string) {
	if parsers <= 1 {
		return false, ""
	}
	var conflict string
	switch {
	case resumeFile != "" && checkpointFile != "":
		conflict = "-resume and -checkpoint"
	case resumeFile != "":
		conflict = "-resume"
	case checkpointFile != "":
		conflict = "-checkpoint"
	default:
		return true, ""
	}
	return false, fmt.Sprintf("-parsers %d ignored: %s needs the sequential reader's byte-offset continuation, which the parallel front-end cannot produce; decoding sequentially", parsers, conflict)
}

// staticFilterDecision decides what to do with -static-prefilter
// outside the generated modes. The flag analyses the generated
// program, so with -emit or a plain -trace it is a configuration
// error. With -trace -resume, though, the natural reading is "resume
// my prefiltered run" — the mask cannot be reconstructed from a trace
// (it is derived from the program, which the wire format does not
// carry), but exiting would make resumption of prefiltered runs
// impossible, and silently dropping the flag would hide that the
// resumed half monitors unfiltered. So that combination proceeds with
// a warning, mirroring the -parsers fallback.
func staticFilterDecision(prefilter bool, traceFile, emitFile, resumeFile string) (fatal, warning string) {
	if !prefilter {
		return "", ""
	}
	switch {
	case emitFile != "":
		return "-static-prefilter analyses the generated program; it cannot be used with -emit", ""
	case traceFile != "" && resumeFile == "":
		return "-static-prefilter analyses the generated program; it cannot be used with -trace", ""
	case traceFile != "":
		return "", "-static-prefilter ignored: the filter mask is derived from the generated program and is not recorded in snapshots or traces, so the resumed run monitors unfiltered (reports may include locations the original run skipped)"
	default:
		return "", ""
	}
}

// runTraceParallel ingests a wire-format trace through the parallel
// front-end: parsers decode workers feed the ordering sequencer, which
// feeds a sequential monitor (shards == 1) or the sharded pipeline. v1
// and text traces fall back to sequential decoding inside the reader.
func runTraceParallel(path string, shards, parsers int, rebalance bool, spec predict.Spec) (result, []race.Report) {
	var rd io.Reader = os.Stdin
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		rd, name = f, path
	}
	start := time.Now()
	// The decode workers publish parse.* into their own registry (they
	// start before the sink exists); /stats and the summary merge it with
	// the sink's monitor.*/pipeline.* cells.
	preg := obs.NewRegistry()
	pr, err := monitor.NewParallelTraceReaderObs(rd, parsers, preg)
	if err != nil {
		fatalf("trace: %v", err)
	}
	defer pr.Close()
	tel.attach(preg)
	hdr := pr.Header()
	var reports []race.Report
	var st monitor.RAStats
	var ws monitor.WindowStats
	var events uint64
	var stats obs.Snapshot
	if shards > 1 {
		pl := monitor.NewPipeline(hdr.Threads, hdr.Decls, monitor.PipelineConfig{
			Shards: shards, Rebalance: rebalance, Predicate: spec.Pred, WindowK: spec.K})
		tel.attach(pl.Obs())
		if err := pl.FeedBatch(pr); err != nil {
			pl.Abort()
			fatalf("trace: %v", err)
		}
		reports = pl.Finish()
		st, events, ws = pl.RAStats(), pl.Events(), pl.WindowStats()
		stats = obs.Merge(pl.Stats(), preg.Snapshot())
	} else {
		m := pr.NewMonitor()
		spec.Apply(m)
		tel.attach(m.Obs())
		if err := m.FeedBatch(pr); err != nil {
			fatalf("trace: %v", err)
		}
		reports = m.Reports()
		st, events, ws = m.RAStats(), m.Events(), m.WindowStats()
		stats = obs.Merge(m.Stats(), preg.Snapshot())
	}
	res := result{
		Program: "trace:" + name, Mode: "trace", Threads: hdr.Threads,
		Completed: true, Shards: shards, Parsers: parsers,
		MonitorNs: time.Since(start).Nanoseconds(),
		Events:    int(events),
	}
	fillLocations(&res, hdr.Decls)
	fillStats(&res, st, len(reports))
	fillPredict(&res, spec.Pred, spec.K, ws)
	res.Stats = &stats
	return res, reports
}

// fillLocations tallies a trace header's declarations into the summary.
func fillLocations(res *result, decls []monitor.LocDecl) {
	for _, d := range decls {
		switch d.Kind {
		case prog.Atomic:
			res.Locations.Atomic++
		case prog.ReleaseAcquire:
			res.Locations.RA++
		default:
			res.Locations.NonAtomic++
		}
	}
}

// runEmit generates a schedule straight into the wire format.
func runEmit(path string, format monitor.Format, gp genParams) result {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		w = f
	}
	tb, name := gp.program()
	start := time.Now()
	n, completed, err := schedgen.Encode(w, tb.Program(), tb, gp.options(), format)
	if err != nil {
		fatalf("emit: %v", err)
	}
	return result{
		Program: name, Mode: "emit", Threads: tb.Threads(), Policy: gp.policy.String(),
		Seed: gp.seed, Events: n, Completed: completed, Shards: 1,
		GenNs:     time.Since(start).Nanoseconds(),
		Locations: locationsJSON{NonAtomic: gp.locs, Atomic: gp.atomics, RA: gp.ra},
	}
}

// fill copies per-monitor telemetry into the summary.
func fill(res *result, m *monitor.Monitor) {
	fillStats(res, m.RAStats(), m.RaceCount())
}

// fillStats copies retention telemetry and derived throughput into the
// summary.
func fillStats(res *result, st monitor.RAStats, races int) {
	res.RALive, res.RALivePeak, res.RACollected = st.Live, st.Peak, st.Collected
	if res.MonitorNs > 0 {
		res.EventsPerSec = float64(res.Events) / (float64(res.MonitorNs) / 1e9)
	}
	res.RaceCount = races
}

// fillPredict records the decided predicate and, under short:k, the
// candidate-window telemetry. PredHB leaves every field zero so the
// JSON summary of default runs is unchanged.
func fillPredict(res *result, pred monitor.Predicate, k int, ws monitor.WindowStats) {
	if pred == monitor.PredHB {
		return
	}
	res.Predicate = predict.Spec{Pred: pred, K: k}.String()
	if pred == monitor.PredShort {
		res.WindowK = k
		res.WindowLive, res.WindowPeak, res.WindowPruned = ws.Live, ws.Peak, ws.Pruned
	}
}

// checkGolden compares (or, with update, rewrites) the deterministic
// report set against a committed golden file.
func checkGolden(path string, update bool, reports []race.Report) error {
	got := goldenDoc{RaceCount: len(reports), Races: []raceJSON{}}
	for _, r := range reports {
		got.Races = append(got.Races, toJSON(r))
	}
	if update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	var want goldenDoc
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("golden %s: %w", path, err)
	}
	if !reflect.DeepEqual(got, want) {
		diff := "sets differ"
		for i := 0; i < len(got.Races) || i < len(want.Races); i++ {
			switch {
			case i >= len(got.Races):
				diff = fmt.Sprintf("missing %+v", want.Races[i])
			case i >= len(want.Races):
				diff = fmt.Sprintf("unexpected %+v", got.Races[i])
			case got.Races[i] != want.Races[i]:
				diff = fmt.Sprintf("got %+v, want %+v", got.Races[i], want.Races[i])
			default:
				continue
			}
			break
		}
		return fmt.Errorf("report set differs from golden %s: got %d races, want %d; first difference: %s (regenerate with -update-golden if the change is intended)",
			path, got.RaceCount, want.RaceCount, diff)
	}
	return nil
}

func toJSON(r race.Report) raceJSON {
	return raceJSON{
		Loc: string(r.Loc), ThreadI: r.ThreadI, ThreadJ: r.ThreadJ,
		OpI: op(r.WriteI), OpJ: op(r.WriteJ),
	}
}

func op(w bool) string {
	if w {
		return "write"
	}
	return "read"
}
