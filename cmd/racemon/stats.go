package main

// Live run telemetry: the -stats-addr HTTP endpoint, the -stats-interval
// progress line, and the "stats" object of the -json summary all read
// the same obs registries the monitor/pipeline publish into. Reads are
// atomic snapshots with bounded staleness (one GC window/batch), so
// scraping never perturbs the hot path.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"localdrf/internal/obs"
)

// telemetry aggregates the run's metric registries — the sink's
// (monitor or pipeline front-end) and, for parallel trace ingest, the
// decoder's — for the three consumers above. Registries are attached as
// the mode runner constructs its sinks; the HTTP server may already be
// serving by then, so the list is mutex-guarded.
type telemetry struct {
	start time.Time

	mu     sync.Mutex
	regs   []*obs.Registry
	prev   obs.Snapshot // last /stats scrape, for rate computation
	prevAt time.Time
}

var tel = &telemetry{start: time.Now()}

func (t *telemetry) attach(reg *obs.Registry) {
	t.mu.Lock()
	t.regs = append(t.regs, reg)
	t.mu.Unlock()
}

// snapshot merges one atomic snapshot of every attached registry.
// Metric names are disjoint by prefix (monitor.*, pipeline.*, parse.*).
func (t *telemetry) snapshot() obs.Snapshot {
	t.mu.Lock()
	regs := make([]*obs.Registry, len(t.regs))
	copy(regs, t.regs)
	t.mu.Unlock()
	snaps := make([]obs.Snapshot, len(regs))
	for i, r := range regs {
		snaps[i] = r.Snapshot()
	}
	return obs.Merge(snaps...)
}

// statsDoc is the GET /stats response: the merged metric snapshot plus
// counter rates over the interval since the previous scrape (since
// process start on the first).
type statsDoc struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Metrics       obs.Snapshot       `json:"metrics"`
	Rates         map[string]float64 `json:"rates,omitempty"`
}

func (t *telemetry) stats() statsDoc {
	s := t.snapshot()
	now := time.Now()
	t.mu.Lock()
	prev, prevAt := t.prev, t.prevAt
	t.prev, t.prevAt = s, now
	t.mu.Unlock()
	if prevAt.IsZero() {
		prevAt = t.start
	}
	doc := statsDoc{UptimeSeconds: now.Sub(t.start).Seconds(), Metrics: s}
	if secs := now.Sub(prevAt).Seconds(); secs > 0 {
		d := s.Delta(prev)
		for n, v := range d.Counters {
			if v > 0 {
				if doc.Rates == nil {
					doc.Rates = make(map[string]float64)
				}
				doc.Rates[n+"_per_sec"] = float64(v) / secs
			}
		}
	}
	return doc
}

// startStats binds addr and serves /stats (JSON snapshot + rates),
// /debug/vars (expvar, including the merged snapshot under "racemon"),
// and the net/http/pprof profile handlers. The server lives for the
// process; -stats-linger keeps the process alive after short runs so CI
// can scrape it.
func startStats(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("stats: %v", err)
	}
	expvar.Publish("racemon", expvar.Func(func() any { return tel.snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tel.stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "racemon: stats server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "racemon: serving stats on http://%s/stats\n", ln.Addr())
}

// progressLoop prints a one-line telemetry digest to stderr every
// interval until stop closes.
func progressLoop(interval time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := tel.snapshot()
	prevAt := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		s := tel.snapshot()
		now := time.Now()
		var rate float64
		if secs := now.Sub(prevAt).Seconds(); secs > 0 {
			rate = float64(s.Delta(prev).Counter("monitor.events")) / secs
		}
		line := fmt.Sprintf("racemon: t=%.1fs events=%d (%.2fM/s) races=%d ra_live=%d gc_sweeps=%d",
			now.Sub(tel.start).Seconds(), s.Counter("monitor.events"), rate/1e6,
			liveRaces(s), s.Gauge("monitor.ra.live"), s.Counter("monitor.gc.sweeps"))
		if occ := s.Vectors["pipeline.ring_occupancy"]; len(occ) > 0 {
			line += fmt.Sprintf(" rings=%v", occ)
		}
		fmt.Fprintln(os.Stderr, line)
		prev, prevAt = s, now
	}
}

// liveRaces reads the race count visible mid-run: the pipeline's
// back-ends publish per-shard tallies every batch, while monitor.races
// is only aggregated at Stats() barriers, so take the larger.
func liveRaces(s obs.Snapshot) uint64 {
	n := s.Counter("monitor.races")
	var v uint64
	for _, x := range s.Vectors["pipeline.backend_races"] {
		v += x
	}
	if v > n {
		n = v
	}
	return n
}
