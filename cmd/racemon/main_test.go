package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestParallelParseDecision pins the -trace front-end selection: the
// parallel decoder only when nothing needs the sequential reader's
// byte-offset continuation, and a warning (never silence) when
// -parsers > 1 has to be dropped.
func TestParallelParseDecision(t *testing.T) {
	cases := []struct {
		name       string
		parsers    int
		resume, ck string
		parallel   bool
		warnHas    string
	}{
		{"sequential-by-default", 1, "", "", false, ""},
		{"parallel", 4, "", "", true, ""},
		{"checkpoint-drops", 4, "", "snap.ldck", false, "-checkpoint"},
		{"resume-drops", 4, "snap.ldck", "", false, "-resume"},
		{"both-drop", 4, "a.ldck", "b.ldck", false, "-resume and -checkpoint"},
		{"parsers-1-no-warning", 1, "", "snap.ldck", false, ""},
	}
	for _, tc := range cases {
		par, warn := parallelParseDecision(tc.parsers, tc.resume, tc.ck)
		if par != tc.parallel {
			t.Errorf("%s: parallel = %v, want %v", tc.name, par, tc.parallel)
		}
		if tc.warnHas == "" && warn != "" {
			t.Errorf("%s: unexpected warning %q", tc.name, warn)
		}
		if tc.warnHas != "" && !strings.Contains(warn, tc.warnHas) {
			t.Errorf("%s: warning %q does not mention %s", tc.name, warn, tc.warnHas)
		}
	}
}

// buildRacemon builds the binary once per test run.
func buildRacemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "racemon")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestParsersCheckpointWarningCLI runs the real binary: -trace -parsers 4
// with -checkpoint must print the fallback warning to stderr (and still
// produce the checkpoint); without -checkpoint it must not warn.
func TestParsersCheckpointWarningCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildRacemon(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.ldtr")
	if out, err := exec.Command(bin, "-events", "2000", "-emit", trace).CombinedOutput(); err != nil {
		t.Fatalf("emit: %v\n%s", err, out)
	}

	ck := filepath.Join(dir, "snap.ldck")
	cmd := exec.Command(bin, "-trace", trace, "-parsers", "4", "-checkpoint", ck)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("racemon -trace -parsers -checkpoint: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-parsers 4 ignored") {
		t.Fatalf("no fallback warning on stderr:\n%s", stderr.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	cmd = exec.Command(bin, "-trace", trace, "-parsers", "4")
	stderr.Reset()
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("racemon -trace -parsers: %v\n%s", err, stderr.String())
	}
	if strings.Contains(stderr.String(), "ignored") {
		t.Fatalf("spurious warning without -checkpoint:\n%s", stderr.String())
	}
}
