package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestParallelParseDecision pins the -trace front-end selection: the
// parallel decoder only when nothing needs the sequential reader's
// byte-offset continuation, and a warning (never silence) when
// -parsers > 1 has to be dropped.
func TestParallelParseDecision(t *testing.T) {
	cases := []struct {
		name       string
		parsers    int
		resume, ck string
		parallel   bool
		warnHas    string
	}{
		{"sequential-by-default", 1, "", "", false, ""},
		{"parallel", 4, "", "", true, ""},
		{"checkpoint-drops", 4, "", "snap.ldck", false, "-checkpoint"},
		{"resume-drops", 4, "snap.ldck", "", false, "-resume"},
		{"both-drop", 4, "a.ldck", "b.ldck", false, "-resume and -checkpoint"},
		{"parsers-1-no-warning", 1, "", "snap.ldck", false, ""},
	}
	for _, tc := range cases {
		par, warn := parallelParseDecision(tc.parsers, tc.resume, tc.ck)
		if par != tc.parallel {
			t.Errorf("%s: parallel = %v, want %v", tc.name, par, tc.parallel)
		}
		if tc.warnHas == "" && warn != "" {
			t.Errorf("%s: unexpected warning %q", tc.name, warn)
		}
		if tc.warnHas != "" && !strings.Contains(warn, tc.warnHas) {
			t.Errorf("%s: warning %q does not mention %s", tc.name, warn, tc.warnHas)
		}
	}
}

// TestStaticFilterDecision pins the -static-prefilter interactions:
// hard errors for -emit and plain -trace (the flag analyses the
// generated program), a warning — never silence — for -trace -resume
// (resuming a prefiltered run is legitimate, but the mask cannot be
// reconstructed from a trace).
func TestStaticFilterDecision(t *testing.T) {
	cases := []struct {
		name                 string
		prefilter            bool
		trace, emit, resume  string
		fatalHas, warningHas string
	}{
		{name: "off", trace: "t.ldtr", resume: "s.ldck"},
		{name: "generated", prefilter: true},
		{name: "emit-fatal", prefilter: true, emit: "t.ldtr", fatalHas: "-emit"},
		{name: "trace-fatal", prefilter: true, trace: "t.ldtr", fatalHas: "-trace"},
		{name: "resume-warns", prefilter: true, trace: "t.ldtr", resume: "s.ldck", warningHas: "unfiltered"},
	}
	for _, tc := range cases {
		fatal, warn := staticFilterDecision(tc.prefilter, tc.trace, tc.emit, tc.resume)
		if tc.fatalHas == "" && fatal != "" {
			t.Errorf("%s: unexpected fatal %q", tc.name, fatal)
		}
		if tc.fatalHas != "" && !strings.Contains(fatal, tc.fatalHas) {
			t.Errorf("%s: fatal %q does not mention %s", tc.name, fatal, tc.fatalHas)
		}
		if tc.warningHas == "" && warn != "" {
			t.Errorf("%s: unexpected warning %q", tc.name, warn)
		}
		if tc.warningHas != "" && !strings.Contains(warn, tc.warningHas) {
			t.Errorf("%s: warning %q does not mention %s", tc.name, warn, tc.warningHas)
		}
	}
}

// buildRacemon builds the binary once per test run.
func buildRacemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "racemon")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestParsersCheckpointWarningCLI runs the real binary: -trace -parsers 4
// with -checkpoint must print the fallback warning to stderr (and still
// produce the checkpoint); without -checkpoint it must not warn.
func TestParsersCheckpointWarningCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildRacemon(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.ldtr")
	if out, err := exec.Command(bin, "-events", "2000", "-emit", trace).CombinedOutput(); err != nil {
		t.Fatalf("emit: %v\n%s", err, out)
	}

	ck := filepath.Join(dir, "snap.ldck")
	cmd := exec.Command(bin, "-trace", trace, "-parsers", "4", "-checkpoint", ck)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("racemon -trace -parsers -checkpoint: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-parsers 4 ignored") {
		t.Fatalf("no fallback warning on stderr:\n%s", stderr.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	cmd = exec.Command(bin, "-trace", trace, "-parsers", "4")
	stderr.Reset()
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("racemon -trace -parsers: %v\n%s", err, stderr.String())
	}
	if strings.Contains(stderr.String(), "ignored") {
		t.Fatalf("spurious warning without -checkpoint:\n%s", stderr.String())
	}
}

// TestStaticPrefilterResumeCLI runs the real binary through the
// satellite scenario: resuming a checkpointed -trace run with
// -static-prefilter must warn on stderr and proceed (exit 0), while a
// plain -trace with the flag stays a hard configuration error.
func TestStaticPrefilterResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildRacemon(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.ldtr")
	if out, err := exec.Command(bin, "-events", "2000", "-emit", trace).CombinedOutput(); err != nil {
		t.Fatalf("emit: %v\n%s", err, out)
	}
	ck := filepath.Join(dir, "snap.ldck")
	if out, err := exec.Command(bin, "-trace", trace, "-checkpoint", ck, "-checkpoint-at", "1000").CombinedOutput(); err != nil {
		t.Fatalf("checkpoint: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-trace", trace, "-resume", ck, "-static-prefilter")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("resume with -static-prefilter must warn, not fail: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-static-prefilter ignored") {
		t.Fatalf("no warning on stderr:\n%s", stderr.String())
	}

	cmd = exec.Command(bin, "-trace", trace, "-static-prefilter")
	stderr.Reset()
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("plain -trace with -static-prefilter: err=%v, want exit 2\n%s", err, stderr.String())
	}
}

// TestPredicateResumeCLI: a checkpoint taken under -predicate short:16
// must resume under short:16 with no flags repeated, and a conflicting
// -predicate must lose with a warning (the restored window state only
// means anything under the checkpointed predicate).
func TestPredicateResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildRacemon(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.ldtr")
	if out, err := exec.Command(bin, "-events", "4000", "-emit", trace).CombinedOutput(); err != nil {
		t.Fatalf("emit: %v\n%s", err, out)
	}
	ck := filepath.Join(dir, "snap.ldck")
	if out, err := exec.Command(bin, "-trace", trace, "-predicate", "short:16",
		"-checkpoint", ck, "-checkpoint-at", "2000").CombinedOutput(); err != nil {
		t.Fatalf("checkpoint: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-trace", trace, "-resume", ck, "-json").Output()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(string(out), `"predicate": "short:16"`) {
		t.Fatalf("resumed run did not keep the checkpointed predicate:\n%s", out)
	}

	cmd := exec.Command(bin, "-trace", trace, "-resume", ck, "-predicate", "syncp")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("conflicting -predicate on resume must warn, not fail: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-predicate syncp ignored") ||
		!strings.Contains(stderr.String(), "short:16") {
		t.Fatalf("no override warning on stderr:\n%s", stderr.String())
	}
}
