package main

// bench-service: the racemond soak harness. Each row boots an
// in-process service.Server on a loopback listener, streams N
// concurrent sessions through resume-capable service.Clients, and
// records the aggregate monitored-event throughput, the p99 per-session
// ingest latency (handshake to done line, full trace) and the process
// peak RSS. The soak row runs at least 100 concurrent sessions — the
// multi-tenancy claim of the service PR, measured rather than asserted.
//
// The rows land in BENCH_service.json (same benchDoc envelope as the
// other BENCH files). They are deliberately NOT part of the
// bench-compare gate: service rows measure wall-clock behaviour of a
// concurrent server under contention, which is far noisier than the
// single-core monitor rows the 15% gate is calibrated for.

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/schedgen"
	"localdrf/internal/service"
)

var serviceJSON = flag.String("service-json", "BENCH_service.json", "write service bench results as JSON to this file (empty disables)")

// serviceRow describes one soak configuration.
type serviceRow struct {
	name     string
	sessions int
	events   int // per session
	shards   int // per-session pipeline shards
}

// serviceRows is the bench matrix: a small tenancy at full per-session
// size, a medium tenancy, a sharded-pipeline variant, and the ≥100-way
// soak (smaller traces so the row stays in benchmark time, not CI time).
var serviceRows = []serviceRow{
	{"service/sessions-8-100k", 8, 100_000, 1},
	{"service/sessions-32-50k", 32, 50_000, 1},
	{"service/sessions-8-100k-4shard", 8, 100_000, 4},
	{"service/soak-128-20k", 128, 20_000, 1},
}

// benchService runs the soak matrix and writes BENCH_service.json.
func benchService() error {
	var results []benchResult
	for _, row := range serviceRows {
		r, err := runServiceRow(row)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		results = append(results, r)
		fmt.Printf("%-34s %4d sessions  %8.2fM ev/s aggregate  p99 %7.1f ms  peak RSS %d MiB\n",
			r.Name, r.Sessions, r.EventsPerSec/1e6, r.P99LatencyMs, r.PeakRSSBytes>>20)
	}
	return writeBenchJSON(*serviceJSON, results)
}

// serviceTrace encodes one deterministic wire-v2 session trace (the
// same generator stack racemond's drive mode uses).
func serviceTrace(seed int64, events int) ([]byte, error) {
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(events)
	p := progsynth.Scaled(seed, cfg)
	tb := monitor.NewTable(p)
	opts := schedgen.Options{Policy: schedgen.Bursty, Seed: seed, MaxEvents: events, StaleReadPct: 10}
	var buf bytes.Buffer
	if _, _, err := schedgen.Encode(&buf, tb.Program(), tb, opts, monitor.BinaryV2); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runServiceRow boots a fresh server, drives row.sessions concurrent
// clients through it, and measures the row.
func runServiceRow(row serviceRow) (benchResult, error) {
	// A handful of distinct traces shared round-robin: enough workload
	// diversity to keep shards and report sets honest, without trace
	// generation dominating a 128-session row.
	nTraces := row.sessions
	if nTraces > 8 {
		nTraces = 8
	}
	traces := make([][]byte, nTraces)
	var genErr error
	var genWG sync.WaitGroup
	for i := range traces {
		genWG.Add(1)
		go func(i int) {
			defer genWG.Done()
			t, err := serviceTrace(1000+int64(i), row.events)
			if err != nil && genErr == nil {
				genErr = err
			}
			traces[i] = t
		}(i)
	}
	genWG.Wait()
	if genErr != nil {
		return benchResult{}, genErr
	}

	ckDir, err := os.MkdirTemp("", "bench-service-*")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(ckDir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchResult{}, err
	}
	srv := service.New(service.Config{
		CheckpointDir:   ckDir,
		CheckpointEvery: uint64(row.events / 4),
		MaxSessions:     row.sessions,
		Shards:          row.shards,
	})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	latencies := make([]time.Duration, row.sessions)
	errs := make([]error, row.sessions)
	var totalEvents uint64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < row.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trace := traces[i%len(traces)]
			c := &service.Client{
				Addr:    addr,
				Session: fmt.Sprintf("bench-%d", i),
				Source:  func() (io.Reader, error) { return bytes.NewReader(trace), nil },
				// No faults are injected, but a loaded loopback can still
				// shed or stall; a few retries keep the row about
				// throughput, not flakiness.
				Attempts: 5, Backoff: 20 * time.Millisecond,
			}
			t0 := time.Now()
			res, err := c.Run()
			latencies[i] = time.Since(t0)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			totalEvents += res.Events
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return benchResult{}, fmt.Errorf("session bench-%d: %w", i, err)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := (len(latencies) * 99) / 100
	if idx >= len(latencies) {
		idx = len(latencies) - 1
	}
	p99 := latencies[idx]
	return benchResult{
		Name:         row.name,
		Iterations:   1,
		NsPerOp:      float64(elapsed.Nanoseconds()),
		TotalNs:      elapsed.Nanoseconds(),
		EventsPerSec: float64(totalEvents) / elapsed.Seconds(),
		Sessions:     row.sessions,
		P99LatencyMs: float64(p99.Nanoseconds()) / 1e6,
		PeakRSSBytes: peakRSSBytes(),
	}, nil
}

// peakRSSBytes reads the process high-water RSS from /proc/self/status
// (VmHWM, in kB). Returns 0 where the proc file is unavailable — the
// field is provenance, not a gated number.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			if kb, err := strconv.ParseInt(f[1], 10, 64); err == nil {
				return kb << 10
			}
		}
	}
	return 0
}
