package main

// bench-plot renders the throughput trajectory recorded in BENCH_*.json
// snapshots as a hand-rolled SVG — no dependencies, committed nowhere,
// uploaded by CI as an artifact next to the bench JSON it plots.
//
// Form: small multiples — one panel per bench row, the single
// events/sec series drawn left to right over the input files in the
// order given. One series per panel means no legend; the panel title
// names it. The last point carries a direct value label; every marker
// carries a <title> tooltip. Colors are the validated default chart
// palette (series blue on the light surface, text in ink tokens, never
// the series color).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// The light-mode chart tokens (surface, ink, muted ink, gridline, and
// the series-1 blue) from the validated reference palette.
const (
	plotSurface = "#fcfcfb"
	plotInk     = "#0b0b0b"
	plotInk2    = "#52514e"
	plotMuted   = "#898781"
	plotGrid    = "#e1e0d9"
	plotBlue    = "#2a78d6"
)

// benchPlot reads the bench JSON snapshots at paths (default: the
// committed BENCH_monitor.json alone) and writes the SVG to out.
func benchPlot(paths []string, out string) error {
	if len(paths) == 0 {
		paths = []string{"BENCH_monitor.json"}
	}
	docs := make([]benchDoc, len(paths))
	labels := make([]string, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("bench-plot: %w", err)
		}
		if err := json.Unmarshal(data, &docs[i]); err != nil {
			return fmt.Errorf("bench-plot: %s: %w", p, err)
		}
		labels[i] = strings.TrimSuffix(filepath.Base(p), ".json")
	}

	// One panel per row name that reports a throughput, in first-seen
	// order across the snapshots; a row absent from a snapshot simply has
	// no point there.
	type panel struct {
		name   string
		points []float64 // NaN = absent
	}
	var panels []panel
	index := map[string]int{}
	for di, doc := range docs {
		for _, r := range doc.Results {
			if r.EventsPerSec <= 0 {
				continue
			}
			pi, ok := index[r.Name]
			if !ok {
				pi = len(panels)
				index[r.Name] = pi
				pts := make([]float64, len(docs))
				for j := range pts {
					pts[j] = math.NaN()
				}
				panels = append(panels, panel{name: r.Name, points: pts})
			}
			panels[pi].points[di] = r.EventsPerSec
		}
	}
	if len(panels) == 0 {
		return fmt.Errorf("bench-plot: no rows with events/sec in %v", paths)
	}

	// Layout: a 3-column grid of fixed-size panels under a title block.
	const (
		panelW, panelH = 320.0, 170.0
		cols           = 3
		marginX        = 24.0
		marginTop      = 64.0
		marginBot      = 28.0
		gapX, gapY     = 16.0, 18.0
	)
	rows := (len(panels) + cols - 1) / cols
	width := marginX*2 + panelW*cols + gapX*(cols-1)
	height := marginTop + panelH*float64(rows) + gapY*float64(rows-1) + marginBot

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="system-ui, sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="%s"/>`+"\n", width, height, plotSurface)
	fmt.Fprintf(&b, `<text x="%.0f" y="28" font-size="17" font-weight="600" fill="%s">Streaming-monitor throughput across bench snapshots</text>`+"\n",
		marginX, plotInk)
	last := docs[len(docs)-1]
	sub := fmt.Sprintf("events/sec per row · snapshots: %s", strings.Join(labels, " → "))
	if last.CPUModel != "" {
		sub += " · " + last.CPUModel
	}
	fmt.Fprintf(&b, `<text x="%.0f" y="48" font-size="12" fill="%s">%s</text>`+"\n", marginX, plotInk2, xmlEscape(sub))

	for i, p := range panels {
		px := marginX + float64(i%cols)*(panelW+gapX)
		py := marginTop + float64(i/cols)*(panelH+gapY)
		drawPanel(&b, px, py, panelW, panelH, p.name, p.points, labels)
	}
	b.WriteString("</svg>\n")

	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d panels × %d snapshots)\n", out, len(panels), len(docs))
	return nil
}

// drawPanel renders one small multiple: title, gridlines, y ticks, the
// series polyline with markers, and a direct label on the last point.
func drawPanel(b *strings.Builder, px, py, w, h float64, name string, pts []float64, labels []string) {
	const (
		padL, padR = 46.0, 14.0
		padT, padB = 24.0, 20.0
	)
	plotW, plotH := w-padL-padR, h-padT-padB
	x0, y0 := px+padL, py+padT

	maxV := 0.0
	for _, v := range pts {
		if !math.IsNaN(v) && v > maxV {
			maxV = v
		}
	}
	top := niceCeil(maxV)

	title := strings.TrimPrefix(name, "monitor/")
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" font-weight="600" fill="%s">%s</text>`+"\n",
		px, py+14, plotInk, xmlEscape(title))

	// Horizontal gridlines at 0 / ½ / max of the nice ceiling, baseline
	// included — recessive, behind the data.
	for _, f := range []float64{0, 0.5, 1} {
		gy := y0 + plotH*(1-f)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			x0, gy, x0+plotW, gy, plotGrid)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="end">%s</text>`+"\n",
			x0-5, gy+3, plotMuted, humanRate(top*f))
	}

	xAt := func(i int) float64 {
		if len(pts) == 1 {
			return x0 + plotW/2
		}
		return x0 + plotW*float64(i)/float64(len(pts)-1)
	}
	yAt := func(v float64) float64 { return y0 + plotH*(1-v/top) }

	// The series: a 2px line through the present points, then ≥8px
	// markers with a 2px surface ring and native <title> tooltips.
	var poly []string
	for i, v := range pts {
		if !math.IsNaN(v) {
			poly = append(poly, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
	}
	if len(poly) > 1 {
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`+"\n",
			strings.Join(poly, " "), plotBlue)
	}
	lastIdx := -1
	for i, v := range pts {
		if math.IsNaN(v) {
			continue
		}
		lastIdx = i
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2"><title>%s: %s ev/s</title></circle>`+"\n",
			xAt(i), yAt(v), plotBlue, plotSurface, xmlEscape(labels[i]), humanRate(v))
	}
	if lastIdx >= 0 {
		v := pts[lastIdx]
		anchor, lx := "start", xAt(lastIdx)+7
		if lx > x0+plotW-34 {
			anchor, lx = "end", xAt(lastIdx)-7
		}
		ly := yAt(v) - 6
		if ly < y0+8 {
			ly = yAt(v) + 14
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="%s">%s</text>`+"\n",
			lx, ly, plotInk, anchor, humanRate(v))
	}

	// X tick labels: first and last snapshot names, muted.
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s">%s</text>`+"\n",
		x0, py+h-6, plotMuted, xmlEscape(truncLabel(labels[0])))
	if len(labels) > 1 {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="end">%s</text>`+"\n",
			x0+plotW, py+h-6, plotMuted, xmlEscape(truncLabel(labels[len(labels)-1])))
	}
}

// niceCeil rounds up to a 1/2/5 × 10ᵏ ceiling so the y-axis tops out on
// a readable number (and never 0, which would divide the panel away).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// humanRate renders an events/sec value compactly (4.2M, 850k, 12).
func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return trimZero(fmt.Sprintf("%.1f", v/1e6)) + "M"
	case v >= 1e3:
		return trimZero(fmt.Sprintf("%.1f", v/1e3)) + "k"
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func trimZero(s string) string { return strings.TrimSuffix(s, ".0") }

func truncLabel(s string) string {
	if len(s) > 18 {
		return s[:17] + "…"
	}
	return s
}

// xmlEscape covers the five XML special characters; row names and file
// labels are plain but provenance strings can hold anything.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
