// Command experiments regenerates every table and figure of the paper's
// evaluation, printing measured results next to the paper's numbers.
//
// Usage:
//
//	experiments [-run all|examples|equivalence|drf|opt|x86|arm|fig5a|fig5b|fig5c|padding]
//	experiments -run bench [-bench-json BENCH_engine.json] [-monitor-json BENCH_monitor.json]
//	experiments -run bench-monitor [-monitor-json BENCH_monitor.json]
//	experiments -run bench-service [-service-json BENCH_service.json]
//	experiments -run bench-compare [-monitor-json BENCH_monitor.json]
//	experiments -run bench-plot [-plot-out bench_plot.svg] [BENCH.json ...]
//
// The semantic experiments (examples, equivalence, x86, arm, opt, drf)
// are exact model-checking results and must reproduce the paper's
// verdicts verbatim. The fig5* experiments run the pipeline-simulator
// substitute for the paper's hardware measurements (see DESIGN.md);
// their numbers are expected to match in shape, not in absolute value.
//
// The bench experiment times the exploration engine against the
// sequential reference path (single tests and the full litmus-corpus
// sweep) and, with -bench-json, writes the measurements as JSON so the
// performance trajectory can be tracked across PRs (BENCH_*.json files).
// It also runs the streaming-monitor benches and writes them to the
// -monitor-json file (BENCH_monitor.json by default): schedule
// generation, single-core monitoring throughput (events/sec) over a
// 10⁶-event bursty schedule — the headline number of the online race
// monitor — plus the parallel-pipeline rows (pipeline-{2,4,8}shard,
// each run and recorded at a multicore GOMAXPROCS of shards+1), the
// wire-v2 frame-decoder throughput with the encoded stream size, the
// parallel front-end rows (pipeline-{2,4}parser-{4,8}shard: N decode
// workers feeding the sync sequencer and the sharded back-ends, from
// encoded v2 bytes), the skewed-workload row (skewed-zipf-1M: a
// Zipf-skewed stream through the rebalancing 4-shard pipeline) and the
// compaction row (compaction-quiet-1M, recording the live
// escalated-vector count with sweeps disabled versus with the GC's
// epoch re-compaction running). Every multicore row records the
// GOMAXPROCS it ran at. bench-monitor runs only the monitor benches.
//
// bench-service runs the racemond soak matrix: an in-process service
// server on loopback driven by 8..128 concurrent resume-capable
// clients, recording per row the session count, aggregate monitored
// events/sec, p99 per-session ingest latency and process peak RSS, all
// written to -service-json (BENCH_service.json). Service rows are not
// part of the bench-compare gate — concurrent wall-clock numbers are
// noisier than the single-core monitor rows the gate is calibrated for.
//
// bench-compare reruns the monitor benches in memory and diffs their
// events/sec against the committed -monitor-json baseline, exiting
// nonzero if any tracked row regressed by more than 15% — the CI
// performance gate. Rows present on only one side are reported but not
// compared. Both bench JSON writers record the host CPU model and Go
// toolchain version; bench-compare warns (without failing) when the
// baseline's provenance differs from the current host.
//
// bench-plot renders the events/sec trajectory across one or more bench
// JSON snapshots (given as positional arguments, in plot order;
// defaults to BENCH_monitor.json) as a dependency-free SVG of small
// multiples — one panel per bench row. CI plots the committed baseline
// against the fresh bench-monitor run and uploads the SVG as an
// artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"localdrf"
	"localdrf/internal/engine"
	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
	"localdrf/internal/staticrace"
)

var (
	benchJSON   = flag.String("bench-json", "", "write bench results as JSON to this file")
	monitorJSON = flag.String("monitor-json", "BENCH_monitor.json", "write monitor bench results as JSON to this file (empty disables)")
	plotOut     = flag.String("plot-out", "bench_plot.svg", "where bench-plot writes its SVG")
)

func main() {
	run := flag.String("run", "all", "which experiment to regenerate")
	flag.Parse()

	experiments := []struct {
		name string
		fn   func() error
	}{
		{"examples", examples},
		{"equivalence", equivalence},
		{"drf", drf},
		{"opt", optimiser},
		{"x86", x86Soundness},
		{"arm", armSoundness},
		{"fig5a", fig5a},
		{"fig5b", fig5b},
		{"fig5c", fig5c},
		{"padding", padding},
	}
	if *run == "bench" {
		if err := bench(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench failed: %v\n", err)
			os.Exit(1)
		}
		if err := benchMonitor(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench-monitor failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *run == "bench-monitor" {
		if err := benchMonitor(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench-monitor failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *run == "bench-service" {
		if err := benchService(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench-service failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *run == "bench-compare" {
		if err := benchCompare(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench-compare failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *run == "bench-plot" {
		if err := benchPlot(flag.Args(), *plotOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiment bench-plot failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	any := false
	for _, e := range experiments {
		if *run != "all" && *run != e.name {
			continue
		}
		any = true
		fmt.Printf("==== %s ====\n", e.name)
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

// examples regenerates §2/§5: the three example fragments behave
// sequentially here, and the C++/Java miscompilations reproduce the bad
// outcomes.
func examples() error {
	names := []string{
		"Example1", "Example1+miscompiled",
		"Example2", "Example2+miscompiled",
		"Example3", "S9.2",
	}
	for _, n := range names {
		tc, ok := localdrf.LitmusTestByName(n)
		if !ok {
			return fmt.Errorf("missing litmus test %s", n)
		}
		if err := localdrf.VerifyLitmus(tc); err != nil {
			return err
		}
		fmt.Printf("%-22s %s\n", tc.Name, tc.Description)
		set, err := localdrf.Outcomes(tc.Prog)
		if err != nil {
			return err
		}
		for _, c := range tc.Checks {
			verdict := "forbidden"
			if set.Exists(c.Pred) {
				verdict = "allowed"
			}
			note := ""
			if c.Note != "" {
				note = " — " + c.Note
			}
			fmt.Printf("    %-24s %-9s (paper: %v)%s\n", c.Name, verdict, c.Want, note)
		}
	}
	return nil
}

// equivalence regenerates the thm. 15/16 check on the whole litmus
// suite: operational and axiomatic outcome sets coincide. The suite is
// swept concurrently on the engine's task runner; the report is printed
// in catalogue order.
func equivalence() error {
	suite := localdrf.LitmusSuite()
	lines := make([]string, len(suite))
	err := engine.ForEach(0, len(suite), func(_, i int) error {
		tc := suite[i]
		// Inner exploration stays single-threaded: the corpus fan-out
		// already saturates the cores.
		op, err := localdrf.OutcomesOpt(tc.Prog, localdrf.ExploreOptions{Parallelism: 1})
		if err != nil {
			return err
		}
		ax, err := localdrf.OutcomesAxiomatic(tc.Prog)
		if err != nil {
			return err
		}
		status := "EQUAL"
		if !op.Equal(ax) {
			status = "DIFFER"
		}
		lines[i] = fmt.Sprintf("%-22s operational=%2d axiomatic=%2d  %s",
			tc.Name, op.Len(), ax.Len(), status)
		if status == "DIFFER" {
			return fmt.Errorf("%s: models disagree", tc.Name)
		}
		return nil
	})
	for _, l := range lines {
		if l != "" {
			fmt.Println(l)
		}
	}
	if err != nil {
		return err
	}
	fmt.Println("thm 15/16: operational ≡ axiomatic on the full suite")
	return nil
}

// drf regenerates the §4/§5 story: global DRF on race-free programs,
// race detection on racy ones, local DRF from the examples' states.
func drf() error {
	guarded := localdrf.NewProgram("MP-guarded").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").JmpZ("r0", "skip").Load("r1", "x").Label("skip").Done().
		MustBuild()
	if err := localdrf.CheckGlobalDRF(guarded); err != nil {
		return err
	}
	fmt.Println("thm 14 (global DRF): MP-guarded is race-free ⇒ all behaviours SC   OK")

	for _, n := range []string{"Example1", "Example2", "MP+na"} {
		tc, _ := localdrf.LitmusTestByName(n)
		races, err := localdrf.FindRaces(tc.Prog, false)
		if err != nil {
			return err
		}
		fmt.Printf("races in %-12s:", n)
		for _, r := range races {
			fmt.Printf(" [%s]", r)
		}
		fmt.Println()
	}

	cases := []struct {
		test string
		L    []localdrf.Loc
	}{
		{"Example1", []localdrf.Loc{"a", "b"}},
		{"Example2", []localdrf.Loc{"a"}},
		{"Example3", []localdrf.Loc{"cx", "g"}},
	}
	for _, c := range cases {
		tc, _ := localdrf.LitmusTestByName(c.test)
		L := localdrf.NewLocSet(c.L...)
		m := localdrf.NewMachine(tc.Prog)
		stable, err := localdrf.LStable(tc.Prog, m, L)
		if err != nil {
			return err
		}
		if err := localdrf.CheckLocalDRFFrom(m, L); err != nil {
			return err
		}
		fmt.Printf("thm 13 (local DRF) from M0 of %-10s with L=%v: stable=%v, theorem holds\n",
			c.test, c.L, stable)
	}
	return nil
}

// optimiser regenerates §7.1: the valid derivations succeed, the invalid
// one is rejected with the violated constraint.
func optimiser() error {
	p := localdrf.NewProgram("opt").
		Vars("a", "b", "c").
		Thread("P0").
		Load("r1", "a").
		Load("r2", "b").
		Load("r3", "a").
		Done().
		MustBuild()
	f := localdrf.ThreadFragment(p, 0)
	out, steps, err := localdrf.CSE(f, p)
	if err != nil {
		return err
	}
	fmt.Printf("CSE        [%s] ⇒ [%s]  (%d steps)\n", f, out, len(steps))

	p2 := localdrf.NewProgram("dse").
		Vars("a", "b", "c").
		Thread("P0").
		StoreI("a", 1).
		Load("rc", "c").
		StoreR("b", "rc").
		StoreI("a", 2).
		Done().
		MustBuild()
	f2 := localdrf.ThreadFragment(p2, 0)
	out2, _, err := localdrf.DSE(f2, p2)
	if err != nil {
		return err
	}
	fmt.Printf("DSE        [%s] ⇒ [%s]\n", f2, out2)

	p3 := localdrf.NewProgram("cp").
		Vars("a", "b", "c").
		Thread("P0").
		StoreI("a", 1).
		Load("rc", "c").
		StoreR("b", "rc").
		Load("r", "a").
		Done().
		MustBuild()
	f3 := localdrf.ThreadFragment(p3, 0)
	out3, _, err := localdrf.ConstProp(f3, p3)
	if err != nil {
		return err
	}
	fmt.Printf("ConstProp  [%s] ⇒ [%s]\n", f3, out3)

	p4 := localdrf.NewProgram("rse").
		Vars("a", "b", "c").
		Thread("P0").
		Load("r1", "a").
		Load("rc", "c").
		StoreR("b", "rc").
		StoreR("a", "r1").
		Done().
		MustBuild()
	f4 := localdrf.ThreadFragment(p4, 0)
	if _, _, err := localdrf.RedundantStoreElimination(f4, p4); err != nil {
		fmt.Printf("RSE        [%s] rejected: %v\n", f4, err)
	} else {
		return fmt.Errorf("redundant store elimination was not rejected")
	}
	return nil
}

func x86Soundness() error {
	return soundnessTable([]localdrf.Scheme{localdrf.SchemeX86, localdrf.SchemeX86PlainAtomicStore})
}

func armSoundness() error {
	return soundnessTable([]localdrf.Scheme{
		localdrf.SchemeARMBal, localdrf.SchemeARMFbs, localdrf.SchemeARMSra,
		localdrf.SchemeARMNaive, localdrf.SchemeARMNaiveAtomics,
	})
}

// soundnessTable prints, per scheme × litmus test, whether compilation is
// sound. The ablation schemes are *expected* to be unsound on specific
// tests (that is their purpose); sound schemes must never be.
func soundnessTable(schemes []localdrf.Scheme) error {
	soundSchemes := map[localdrf.Scheme]bool{
		localdrf.SchemeX86:    true,
		localdrf.SchemeARMBal: true,
		localdrf.SchemeARMFbs: true,
		localdrf.SchemeARMSra: true,
	}
	for _, s := range schemes {
		fmt.Printf("%s:\n", s)
		for _, tc := range localdrf.LitmusSuite() {
			err := localdrf.CheckCompilation(tc.Prog, s)
			verdict := "sound"
			if err != nil {
				verdict = "UNSOUND: " + err.Error()
			}
			fmt.Printf("    %-22s %s\n", tc.Name, verdict)
			if err != nil && soundSchemes[s] {
				return fmt.Errorf("scheme %s must be sound on %s: %w", s, tc.Name, err)
			}
		}
	}
	return nil
}

// fig5a prints the workload table: benchmark, access rate, class mix.
func fig5a() error {
	fmt.Printf("%-22s %9s   %s\n", "benchmark", "M acc/s", "memory access distribution (reconstructed)")
	for _, b := range localdrf.Benchmarks() {
		fmt.Printf("%-22s %9.2f   %s   fp=%.0f%%\n", b.Name, b.RateM, b.MixString(), 100*b.FPShare)
	}
	return nil
}

func fig5b() error {
	return fig5series(localdrf.ArchThunderX(), map[localdrf.PerfScheme]string{
		localdrf.PerfBAL: "+2.5%", localdrf.PerfFBS: "+0.6%", localdrf.PerfSRA: "+85.3%",
	})
}

func fig5c() error {
	return fig5series(localdrf.ArchPower(), map[localdrf.PerfScheme]string{
		localdrf.PerfBAL: "+2.9%", localdrf.PerfFBS: "+26.0%", localdrf.PerfSRA: "+40.8%",
	})
}

func fig5series(arch localdrf.Arch, paperAvg map[localdrf.PerfScheme]string) error {
	schemes := []localdrf.PerfScheme{localdrf.PerfBAL, localdrf.PerfFBS, localdrf.PerfSRA}
	per := map[localdrf.PerfScheme]map[string]float64{}
	avg := map[localdrf.PerfScheme]float64{}
	for _, s := range schemes {
		per[s], avg[s] = localdrf.SimSuite(arch, s)
	}
	fmt.Printf("%s — simulated time normalised to baseline\n", arch.Name)
	fmt.Printf("%-22s", "benchmark")
	for _, s := range schemes {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	var names []string
	for _, b := range localdrf.Benchmarks() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-22s", n)
		for _, s := range schemes {
			fmt.Printf(" %8.3f", per[s][n])
		}
		fmt.Println()
	}
	fmt.Printf("%-22s", "AVERAGE (measured)")
	for _, s := range schemes {
		fmt.Printf(" %+7.1f%%", 100*(avg[s]-1))
	}
	fmt.Println()
	fmt.Printf("%-22s", "AVERAGE (paper)")
	for _, s := range schemes {
		fmt.Printf(" %8s", paperAvg[s])
	}
	fmt.Println()
	return nil
}

// benchResult is one timed measurement, serialised to the -bench-json
// file so future PRs can track the performance trajectory.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	TotalNs    int64   `json:"total_ns"`
	// EventsPerSec is the streaming-throughput form of the measurement,
	// reported by the monitor benches (events processed per second).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// RAPeakLive is the high-water mark of live RA messages during the
	// run — the windowed GC's retention bound (monitor benches only).
	RAPeakLive int `json:"ra_peak_live,omitempty"`
	// RACollected is how many dead RA messages the windowed GC reclaimed.
	RACollected uint64 `json:"ra_collected,omitempty"`
	// WindowPeakLive is the high-water mark of live short-race window
	// candidates — the measured bounded-memory claim of the distance-k
	// predicate (short-k rows only; bounded by k + GC interval
	// regardless of stream length).
	WindowPeakLive int `json:"window_peak_live,omitempty"`
	// AllocsPerEvent is the heap allocation rate of the monitoring pass
	// (monitor benches only; epochs keep the common case at ≈0).
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
	// GoMaxProcs records a per-row GOMAXPROCS override (the pipeline
	// rows run multicore; unset rows ran at the document-level value).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// EncodedBytes is the wire-format size of the benched stream
	// (wire benches only).
	EncodedBytes int `json:"encoded_bytes,omitempty"`
	// SnapshotBytes is the encoded size of the monitor's checkpoint at
	// the end of the benched stream — the direct measurement of the live
	// state the windowed GC and epoch compression keep bounded.
	SnapshotBytes int `json:"snapshot_bytes,omitempty"`
	// EscalatedBefore/EscalatedAfter bracket the GC's epoch re-compaction
	// (compaction bench only): live escalated-vector count at end of
	// stream with sweeps disabled, versus with compaction demoting quiet
	// vectors back to epochs at every sweep.
	EscalatedBefore int `json:"escalated_before,omitempty"`
	EscalatedAfter  int `json:"escalated_after,omitempty"`
	// CertifiedLocs is how many locations the static certificate let the
	// monitor's prefilter skip (static-prefilter row only).
	CertifiedLocs int `json:"certified_locs,omitempty"`
	// Sessions is how many concurrent trace sessions the row streamed
	// through the racemond server (bench-service rows only).
	Sessions int `json:"sessions,omitempty"`
	// P99LatencyMs is the 99th-percentile per-session ingest latency —
	// handshake to done line for the whole trace (bench-service rows).
	P99LatencyMs float64 `json:"p99_latency_ms,omitempty"`
	// PeakRSSBytes is the process high-water RSS (VmHWM) after the row
	// ran (bench-service rows; 0 where /proc is unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// benchDoc is the on-disk shape of a BENCH_*.json file: the rows plus
// the provenance needed to judge whether two files are comparable
// (bench numbers from different CPUs or toolchains are trajectories,
// not regressions).
type benchDoc struct {
	Generated  string        `json:"generated"`
	GoMaxProcs int           `json:"gomaxprocs"`
	CPUModel   string        `json:"cpu_model,omitempty"`
	GoVersion  string        `json:"go_version,omitempty"`
	Results    []benchResult `json:"results"`
}

// cpuModel best-effort identifies the host CPU. Linux exposes it in
// /proc/cpuinfo ("model name" on x86, sometimes "Processor"/"uarch"
// elsewhere); when unreadable the architecture is better than nothing.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			key, val, ok := strings.Cut(line, ":")
			if !ok {
				continue
			}
			switch strings.TrimSpace(key) {
			case "model name", "Processor", "uarch":
				return strings.TrimSpace(val)
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// timeIt runs fn repeatedly for at least ~200ms (and at least 3 times)
// and records the mean time per run.
func timeIt(name string, results *[]benchResult, fn func() error) error {
	const minDuration = 200 * time.Millisecond
	var total time.Duration
	iters := 0
	for total < minDuration || iters < 3 {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		total += time.Since(start)
		iters++
	}
	r := benchResult{
		Name:       name,
		Iterations: iters,
		NsPerOp:    float64(total.Nanoseconds()) / float64(iters),
		TotalNs:    total.Nanoseconds(),
	}
	*results = append(*results, r)
	fmt.Printf("%-36s %8d iters   %12.0f ns/op\n", r.Name, r.Iterations, r.NsPerOp)
	return nil
}

// bench times the exploration engine against the sequential reference
// path: the fig. 1 message-passing enumeration and the full litmus-corpus
// sweep. With -bench-json the measurements are written as JSON.
func bench() error {
	mp, ok := localdrf.LitmusTestByName("MP")
	if !ok {
		return fmt.Errorf("MP missing from the catalogue")
	}
	suite := localdrf.LitmusSuite()
	var results []benchResult
	checkErr := func(_ *localdrf.OutcomeSet, err error) error { return err }

	if err := timeIt("fig1-mp/sequential", &results, func() error {
		return checkErr(localdrf.OutcomesSequential(mp.Prog))
	}); err != nil {
		return err
	}
	if err := timeIt("fig1-mp/engine", &results, func() error {
		return checkErr(localdrf.Outcomes(mp.Prog))
	}); err != nil {
		return err
	}
	if err := timeIt("litmus-sweep/sequential", &results, func() error {
		for _, tc := range suite {
			if err := checkErr(localdrf.OutcomesSequential(tc.Prog)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := timeIt("litmus-sweep/engine-concurrent", &results, func() error {
		return engine.ForEach(0, len(suite), func(_, i int) error {
			return checkErr(localdrf.OutcomesOpt(suite[i].Prog,
				localdrf.ExploreOptions{Parallelism: 1}))
		})
	}); err != nil {
		return err
	}

	return writeBenchJSON(*benchJSON, results)
}

// writeBenchJSON serialises bench measurements (no-op when path is "").
func writeBenchJSON(path string, results []benchResult) error {
	if path == "" {
		return nil
	}
	doc := benchDoc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
		Results:    results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchMonitor times the streaming race monitor on the workload the
// acceptance bar names: a 10⁶-event bursty schedule of a scaled random
// program, monitored single-core in one pass. It also records schedule
// generation, the fused generate-and-monitor stream mode, and the
// sharded-by-location mode; the online pass additionally reports the
// windowed GC's peak live RA-message count and the monitoring
// allocations per event. Everything is written to -monitor-json.
func benchMonitor() error {
	results, err := benchMonitorResults()
	if err != nil {
		return err
	}
	return writeBenchJSON(*monitorJSON, results)
}

// benchMonitorResults runs the monitor benches and returns the rows —
// shared by bench-monitor (which writes them to the JSON baseline) and
// bench-compare (which diffs them against it without writing).
func benchMonitorResults() ([]benchResult, error) {
	const nevents = 1_000_000
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(nevents)
	p := progsynth.Scaled(1, cfg)
	tb := monitor.NewTable(p)
	opt := schedgen.Options{Policy: schedgen.Bursty, Seed: 1, MaxEvents: nevents, StaleReadPct: 10}

	var results []benchResult
	var stream []monitor.Event
	if err := timeIt("monitor/schedgen-bursty-1M", &results, func() error {
		var err error
		stream, _, err = schedgen.Generate(p, tb, opt, stream[:0])
		return err
	}); err != nil {
		return nil, err
	}
	mon := tb.NewMonitor()
	if err := timeIt("monitor/online-bursty-1M", &results, func() error {
		mon.Reset()
		for _, e := range stream {
			mon.Step(e)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	online := len(results) - 1
	// One dedicated pass for the allocation rate (the timed loops above
	// interleave with harness bookkeeping).
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	mon.Reset()
	for _, e := range stream {
		mon.Step(e)
	}
	runtime.ReadMemStats(&after)
	st := mon.RAStats()
	results[online].RAPeakLive = st.Peak
	results[online].RACollected = st.Collected
	results[online].AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(nevents)
	// Telemetry overhead: the identical single-core pass with a scraper
	// goroutine polling Obs().Snapshot() every millisecond — the /stats
	// endpoint's access pattern. The acceptance bound for the obs layer
	// is this row staying within 2% of online-bursty-1M; bench-compare
	// tracks it against its own baseline like every other row.
	if err := timeIt("monitor/obs-overhead-1M", &results, func() error {
		mon.Reset()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			reg := mon.Obs()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = reg.Snapshot()
				}
			}
		}()
		for _, e := range stream {
			mon.Step(e)
		}
		close(stop)
		<-done
		return nil
	}); err != nil {
		return nil, err
	}
	obsRow := len(results) - 1
	// The checkpoint of the fully-monitored stream IS the live state —
	// record its size on the online row, and time the codec round trip.
	var snapBuf bytes.Buffer
	if err := mon.Snapshot(&snapBuf); err != nil {
		return nil, err
	}
	results[online].SnapshotBytes = snapBuf.Len()
	if err := timeIt("monitor/snapshot-roundtrip-1M", &results, func() error {
		snapBuf.Reset()
		if err := mon.Snapshot(&snapBuf); err != nil {
			return err
		}
		_, err := monitor.Restore(bytes.NewReader(snapBuf.Bytes()))
		return err
	}); err != nil {
		return nil, err
	}
	results[len(results)-1].SnapshotBytes = snapBuf.Len()
	if err := timeIt("monitor/stream-bursty-1M", &results, func() error {
		m := tb.NewMonitor()
		_, err := schedgen.Stream(p, tb, opt, func(e monitor.Event) error {
			m.Step(e)
			return nil
		})
		return err
	}); err != nil {
		return nil, err
	}
	if err := timeIt("monitor/sharded4-bursty-1M", &results, func() error {
		_, err := monitor.ShardedRaces(tb.Threads(), tb.Decls(), stream, 4, 0)
		return err
	}); err != nil {
		return nil, err
	}
	// The parallel pipeline rows run multicore: GOMAXPROCS is raised to
	// shards+1 (sync front-end + race back-ends) for the row and
	// recorded in it, then restored, so the single-core rows above stay
	// comparable across PRs. On machines with fewer physical cores the
	// row records the setting it asked for; the wall clock tells the
	// truth about what the hardware could deliver.
	prevProcs := runtime.GOMAXPROCS(0)
	for _, shards := range []int{2, 4, 8} {
		procs := shards + 1
		runtime.GOMAXPROCS(procs)
		err := timeIt(fmt.Sprintf("monitor/pipeline-%dshard-bursty-1M", shards), &results, func() error {
			got := monitor.PipelineRaces(tb.Threads(), tb.Decls(), stream, monitor.PipelineConfig{Shards: shards})
			if len(got) != mon.RaceCount() {
				return fmt.Errorf("pipeline reported %d races, sequential %d", len(got), mon.RaceCount())
			}
			return nil
		})
		runtime.GOMAXPROCS(prevProcs)
		if err != nil {
			return nil, err
		}
		results[len(results)-1].GoMaxProcs = procs
	}
	// Wire v2: encode the stream once, then time the batch decoder.
	var wireBuf bytes.Buffer
	if _, _, err := schedgen.Encode(&wireBuf, p, tb, opt, monitor.BinaryV2); err != nil {
		return nil, err
	}
	encoded := wireBuf.Bytes()
	if err := timeIt("monitor/wire-v2-decode-1M", &results, func() error {
		tr, err := monitor.NewTraceReader(bytes.NewReader(encoded))
		if err != nil {
			return err
		}
		var batch []monitor.Event
		n := 0
		for {
			var ok bool
			batch, ok, err = tr.NextBatch(batch[:0])
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			n += len(batch)
		}
		if n != nevents {
			return fmt.Errorf("decoded %d events, want %d", n, nevents)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	results[len(results)-1].EncodedBytes = len(encoded)
	// Parallel front-end rows: the encoded v2 bytes decoded by N workers
	// feeding the ordering sequencer, race checking split across the
	// sharded back-ends — the fully parallel ingest path. GOMAXPROCS is
	// raised to parsers + shards + 2 (frame producer and sync front-end)
	// for the row and recorded in it; on machines with fewer physical
	// cores the wall clock reports what the hardware could deliver.
	for _, pc := range []struct{ parsers, shards int }{{2, 4}, {2, 8}, {4, 4}, {4, 8}} {
		procs := pc.parsers + pc.shards + 2
		runtime.GOMAXPROCS(procs)
		err := timeIt(fmt.Sprintf("monitor/pipeline-%dparser-%dshard-1M", pc.parsers, pc.shards), &results, func() error {
			got, _, err := monitor.ReadRacesParallel(bytes.NewReader(encoded), pc.parsers,
				monitor.PipelineConfig{Shards: pc.shards})
			if err != nil {
				return err
			}
			if len(got) != mon.RaceCount() {
				return fmt.Errorf("parallel front-end reported %d races, sequential %d", len(got), mon.RaceCount())
			}
			return nil
		})
		runtime.GOMAXPROCS(prevProcs)
		if err != nil {
			return nil, err
		}
		results[len(results)-1].GoMaxProcs = procs
	}
	// Skewed workload: a Zipf-skewed stream (hot nonatomic locations)
	// through the rebalancing 4-shard pipeline — the row the
	// skew-adaptive router exists for.
	skewOpt := opt
	skewOpt.LocSkew = 1.3
	skewStream, _, err := schedgen.Generate(p, tb, skewOpt, nil)
	if err != nil {
		return nil, err
	}
	seqSkew := tb.NewMonitor()
	seqSkew.StepBatch(skewStream)
	runtime.GOMAXPROCS(5)
	err = timeIt("monitor/skewed-zipf-1M", &results, func() error {
		got := monitor.PipelineRaces(tb.Threads(), tb.Decls(), skewStream,
			monitor.PipelineConfig{Shards: 4, Rebalance: true})
		if len(got) != seqSkew.RaceCount() {
			return fmt.Errorf("rebalancing pipeline reported %d races, sequential %d", len(got), seqSkew.RaceCount())
		}
		return nil
	})
	runtime.GOMAXPROCS(prevProcs)
	if err != nil {
		return nil, err
	}
	results[len(results)-1].GoMaxProcs = 5
	// Compaction: a 16-thread unfair halting schedule sized so threads
	// retire throughout the second half of the stream — escalated vectors
	// go quiet as their writers halt and the surviving threads' sweeps
	// demote them back to epochs. EscalatedBefore counts the live
	// escalated vectors at end of stream with sweeps disabled
	// (escalations only accumulate); the timed run uses the default GC —
	// EscalatedAfter records what its compaction leaves.
	quietCfg := progsynth.ScaledDefaults()
	quietCfg.Threads = 16
	quietCfg.Iters = quietCfg.IterationsFor(nevents / 2)
	quietProg := progsynth.Scaled(1, quietCfg)
	quietTb := monitor.NewTable(quietProg)
	quietOpt := schedgen.Options{Policy: schedgen.Unfair, Seed: 1, MaxEvents: nevents,
		StaleReadPct: 10, EmitHalts: true}
	quietStream, _, err := schedgen.Generate(quietProg, quietTb, quietOpt, nil)
	if err != nil {
		return nil, err
	}
	noSweep := quietTb.NewMonitor()
	noSweep.SetGCInterval(1 << 62)
	noSweep.StepBatch(quietStream)
	escalatedAfter := 0
	if err := timeIt("monitor/compaction-quiet-1M", &results, func() error {
		m := quietTb.NewMonitor()
		m.StepBatch(quietStream)
		escalatedAfter = m.EscalatedVectors()
		return nil
	}); err != nil {
		return nil, err
	}
	results[len(results)-1].EscalatedBefore = noSweep.EscalatedVectors()
	results[len(results)-1].EscalatedAfter = escalatedAfter
	// Static prefilter: a private-heavy workload (per-thread private
	// pools taking 60% of the nonatomic data traffic) monitored with and
	// without the static certificate's skip mask. The certificate proves
	// the private locations race-free, so the filtered run skips their
	// checker work entirely; the report sets and RA retention must be
	// identical — the delta between the two rows is pure checker savings.
	privCfg := progsynth.ScaledDefaults()
	privCfg.PrivateLocs = 6
	privCfg.PrivatePct = 60
	privCfg.Iters = privCfg.IterationsFor(nevents)
	privProg := progsynth.Scaled(1, privCfg)
	privTb := monitor.NewTable(privProg)
	privStream, _, err := schedgen.Generate(privProg, privTb, opt, nil)
	if err != nil {
		return nil, err
	}
	privMask := monitor.StaticFilter(privTb.Decls(), staticrace.Analyze(privProg).RaceFree)
	if privMask == nil {
		return nil, fmt.Errorf("static analysis certified nothing on the private-heavy workload")
	}
	noFilter := privTb.NewMonitor()
	if err := timeIt("monitor/static-nofilter-1M", &results, func() error {
		noFilter.Reset()
		noFilter.StepBatch(privStream)
		return nil
	}); err != nil {
		return nil, err
	}
	withFilter := privTb.NewMonitor()
	withFilter.SetStaticFilter(privMask)
	if err := timeIt("monitor/static-prefilter-1M", &results, func() error {
		withFilter.Reset()
		withFilter.StepBatch(privStream)
		return nil
	}); err != nil {
		return nil, err
	}
	if !race.ReportsEqual(withFilter.Reports(), noFilter.Reports()) || withFilter.RAStats() != noFilter.RAStats() {
		return nil, fmt.Errorf("static prefilter changed the reports or RA stats")
	}
	results[len(results)-1].CertifiedLocs = monitor.FilteredLocs(privMask)
	// Predictive predicates over the same bursty 1M-event stream: the
	// sync-preserving row prices the write-side join suppression plus
	// the SP-clock bookkeeping; the distance-64 short-race row
	// additionally records the candidate window's peak live entry
	// count — the measured bounded-memory claim (peak ≤ k + GC
	// interval, independent of stream length). Both rows must report
	// at least the hb set; the short window here decides a subset of
	// syncp, so its count is sanity-checked against syncp's.
	syncpMon := tb.NewMonitor()
	syncpMon.SetPredicate(monitor.PredSyncP, 0)
	if err := timeIt("monitor/syncp-1M", &results, func() error {
		syncpMon.Reset()
		syncpMon.StepBatch(stream)
		return nil
	}); err != nil {
		return nil, err
	}
	if syncpMon.RaceCount() < mon.RaceCount() {
		return nil, fmt.Errorf("syncp reported %d races, fewer than hb's %d", syncpMon.RaceCount(), mon.RaceCount())
	}
	shortMon := tb.NewMonitor()
	shortMon.SetPredicate(monitor.PredShort, 64)
	if err := timeIt("monitor/short-k64-1M", &results, func() error {
		shortMon.Reset()
		shortMon.StepBatch(stream)
		return nil
	}); err != nil {
		return nil, err
	}
	ws := shortMon.WindowStats()
	if ws.Peak == 0 || ws.Peak > 64+4096 {
		return nil, fmt.Errorf("short:64 window peak %d outside (0, k+gc interval]", ws.Peak)
	}
	if shortMon.RaceCount() > syncpMon.RaceCount() {
		return nil, fmt.Errorf("short:64 reported %d races, more than syncp's %d", shortMon.RaceCount(), syncpMon.RaceCount())
	}
	results[len(results)-1].WindowPeakLive = ws.Peak
	for i := range results {
		// events/sec is meaningful only for rows that process the
		// 1M-event stream; the snapshot codec row times state encode +
		// decode, not event ingestion.
		if results[i].Name == "monitor/snapshot-roundtrip-1M" {
			continue
		}
		results[i].EventsPerSec = float64(nevents) / (results[i].NsPerOp / 1e9)
	}
	fmt.Printf("monitor throughput: %.1fM events/sec single-core (%d distinct races; RA live peak %d, %d collected, %.3f allocs/event)\n",
		results[online].EventsPerSec/1e6, mon.RaceCount(), st.Peak, st.Collected,
		results[online].AllocsPerEvent)
	fmt.Printf("telemetry overhead: %+.1f%% vs online-bursty-1M with a 1ms Obs().Snapshot() scraper\n",
		100*(results[obsRow].NsPerOp/results[online].NsPerOp-1))
	return results, nil
}

// benchCompare reruns the monitor benches in memory and diffs their
// events/sec against the committed -monitor-json baseline. Any tracked
// row regressing by more than 15% fails the run — the CI performance
// gate. It never writes the baseline file; regenerate it deliberately
// with bench-monitor when a trajectory change is intended.
func benchCompare() error {
	path := *monitorJSON
	if path == "" {
		return fmt.Errorf("bench-compare needs -monitor-json pointing at the committed baseline")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-compare: %w (is the baseline committed?)", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench-compare: baseline %s: %w", path, err)
	}
	// Provenance mismatches downgrade trust, not the exit code: numbers
	// from a different CPU or toolchain move for reasons that are not
	// regressions, so flag them loudly and let the human judge.
	if host := cpuModel(); doc.CPUModel != "" && doc.CPUModel != host {
		fmt.Printf("bench-compare: WARNING: baseline measured on %q, this host is %q — deltas may reflect hardware, not code\n",
			doc.CPUModel, host)
	}
	if v := runtime.Version(); doc.GoVersion != "" && doc.GoVersion != v {
		fmt.Printf("bench-compare: WARNING: baseline built with %s, this run with %s\n", doc.GoVersion, v)
	}
	base := map[string]benchResult{}
	for _, r := range doc.Results {
		base[r.Name] = r
	}
	fresh, err := benchMonitorResults()
	if err != nil {
		return err
	}
	const tolerance = 0.15
	regressions := 0
	fmt.Printf("\nbench-compare against %s (tolerance %.0f%%):\n", path, tolerance*100)
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok || b.EventsPerSec <= 0 || r.EventsPerSec <= 0 {
			fmt.Printf("%-40s %41s\n", r.Name, "untracked (no baseline events/sec)")
			continue
		}
		ratio := r.EventsPerSec / b.EventsPerSec
		verdict := "ok"
		if ratio < 1-tolerance {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %8.1fM -> %8.1fM ev/s  %+6.1f%%  %s\n",
			r.Name, b.EventsPerSec/1e6, r.EventsPerSec/1e6, 100*(ratio-1), verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("%d row(s) regressed more than %.0f%% versus %s", regressions, tolerance*100, path)
	}
	fmt.Printf("bench-compare: all tracked rows within %.0f%% of %s\n", tolerance*100, path)
	return nil
}

// padding regenerates the §8.3 control experiment: nop padding alone
// reproduces the BAL/FBS "speedups" on the alignment-sensitive
// benchmarks.
func padding() error {
	arch := localdrf.ArchThunderX()
	for _, name := range []string{"sequence", "menhir-standard"} {
		b, ok := localdrf.BenchmarkByName(name)
		if !ok {
			return fmt.Errorf("missing benchmark %s", name)
		}
		fmt.Printf("%-18s baseline+nop=%.4f  BAL=%.4f  FBS=%.4f\n",
			name,
			localdrf.SimNormalized(b, arch, localdrf.PerfBaselinePadded),
			localdrf.SimNormalized(b, arch, localdrf.PerfBAL),
			localdrf.SimNormalized(b, arch, localdrf.PerfFBS))
	}
	fmt.Println("(values below 1.0 are the i-cache alignment artefact the paper diagnosed)")
	return nil
}
