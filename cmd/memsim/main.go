// Command memsim runs the §8 performance simulation.
//
// Usage:
//
//	memsim -arch arm                       # fig. 5b table
//	memsim -arch power                     # fig. 5c table
//	memsim -arch arm -bench minilight      # one benchmark, all schemes
//	memsim -arch arm -scheme sra           # one scheme, all benchmarks
//
// Results are simulated times normalised to the simulated baseline; see
// DESIGN.md for why this is a simulation and what it preserves.
package main

import (
	"flag"
	"fmt"
	"os"

	"localdrf"
)

func main() {
	archFlag := flag.String("arch", "arm", "architecture profile: arm (ThunderX-like) or power")
	benchFlag := flag.String("bench", "", "run a single benchmark")
	schemeFlag := flag.String("scheme", "", "run a single scheme: bal, fbs, sra, padded")
	flag.Parse()

	var arch localdrf.Arch
	switch *archFlag {
	case "arm":
		arch = localdrf.ArchThunderX()
	case "power":
		arch = localdrf.ArchPower()
	default:
		fail(fmt.Errorf("unknown arch %q", *archFlag))
	}

	schemes := []localdrf.PerfScheme{localdrf.PerfBAL, localdrf.PerfFBS, localdrf.PerfSRA}
	if *schemeFlag != "" {
		s, ok := map[string]localdrf.PerfScheme{
			"bal":    localdrf.PerfBAL,
			"fbs":    localdrf.PerfFBS,
			"sra":    localdrf.PerfSRA,
			"padded": localdrf.PerfBaselinePadded,
		}[*schemeFlag]
		if !ok {
			fail(fmt.Errorf("unknown scheme %q", *schemeFlag))
		}
		schemes = []localdrf.PerfScheme{s}
	}

	benches := localdrf.Benchmarks()
	if *benchFlag != "" {
		b, ok := localdrf.BenchmarkByName(*benchFlag)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q", *benchFlag))
		}
		benches = []localdrf.Benchmark{b}
	}

	fmt.Printf("%s — simulated normalised time (baseline = 1.0)\n", arch.Name)
	fmt.Printf("%-22s", "benchmark")
	for _, s := range schemes {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	sums := make([]float64, len(schemes))
	for _, b := range benches {
		fmt.Printf("%-22s", b.Name)
		for i, s := range schemes {
			n := localdrf.SimNormalized(b, arch, s)
			sums[i] += n
			fmt.Printf(" %8.3f", n)
		}
		fmt.Println()
	}
	if len(benches) > 1 {
		fmt.Printf("%-22s", "AVERAGE")
		for i := range schemes {
			fmt.Printf(" %8.3f", sums[i]/float64(len(benches)))
		}
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
