// Command drfcheck analyses programs for data races and DRF guarantees.
//
// Usage:
//
//	drfcheck -test MP                 # analyse a catalogued litmus test
//	drfcheck -file prog.litmus        # analyse a litmus file
//	drfcheck -test Example1 -L a,b    # additionally check local DRF for L
//	drfcheck -test S -static          # additionally run the static analysis
//
// The report covers: distinct data races (in SC traces and in all
// traces), whether the program is data-race-free in the global-DRF sense,
// and — when -L is given — whether the initial state is L-stable and the
// local DRF theorem's conclusion holds from it. With -static the sound
// static may-race analysis runs too, printing each nonatomic location's
// verdict and certificate reason — no trace enumeration involved, so it
// works at any program size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"localdrf"
)

func main() {
	test := flag.String("test", "", "catalogued litmus test name")
	file := flag.String("file", "", "litmus file")
	locs := flag.String("L", "", "comma-separated location set for local DRF")
	static := flag.Bool("static", false, "run the sound static may-race analysis")
	flag.Parse()

	var p *localdrf.Program
	switch {
	case *test != "":
		t, ok := localdrf.LitmusTestByName(*test)
		if !ok {
			fail(fmt.Errorf("unknown test %q", *test))
		}
		p = t.Prog
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		parsed, err := localdrf.ParseProgram(string(src))
		if err != nil {
			fail(err)
		}
		p = parsed
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("program %s:\n%s\n", p.Name, p)

	scRaces, err := localdrf.FindRaces(p, true)
	if err != nil {
		fail(err)
	}
	allRaces, err := localdrf.FindRaces(p, false)
	if err != nil {
		fail(err)
	}
	fmt.Printf("races in SC traces:  %d\n", len(scRaces))
	for _, r := range scRaces {
		fmt.Printf("    %s\n", r)
	}
	fmt.Printf("races in all traces: %d\n", len(allRaces))
	for _, r := range allRaces {
		fmt.Printf("    %s\n", r)
	}

	if len(scRaces) == 0 {
		if err := localdrf.CheckGlobalDRF(p); err != nil {
			fail(err)
		}
		fmt.Println("program is data-race-free: all behaviours are sequentially consistent (thm 14)")
	} else {
		fmt.Println("program races; global DRF gives no guarantee — but local DRF still bounds the damage:")
		raced := map[localdrf.Loc]bool{}
		for _, r := range allRaces {
			raced[r.Loc] = true
		}
		var safe []string
		for l := range p.Locs {
			if !raced[l] {
				safe = append(safe, string(l))
			}
		}
		if len(safe) > 0 {
			fmt.Printf("    locations free of races (accesses there are sequential): %s\n",
				strings.Join(safe, ", "))
		}
	}

	if *static {
		rep := localdrf.AnalyzeStatic(p)
		fmt.Printf("static analysis: %s\n", rep)
		if len(rep.MayRace) > 0 {
			fmt.Printf("    may race (sound over-approximation): %s\n", joinLocs(rep.MayRace))
		}
		for _, l := range rep.Certified {
			fmt.Printf("    %s: race-free in every execution (%s)\n", l, rep.Reasons[l])
		}
		if len(rep.Certified) > 0 {
			fmt.Println("    certified locations admit LDRF reasoning: accesses there are happens-before ordered,")
			fmt.Println("    so the monitor may skip them (racemon -static-prefilter) and poRW reorderings are licensed")
		}
	}

	if *locs != "" {
		var L []localdrf.Loc
		for _, s := range strings.Split(*locs, ",") {
			L = append(L, localdrf.Loc(strings.TrimSpace(s)))
		}
		set := localdrf.NewLocSet(L...)
		m := localdrf.NewMachine(p)
		stable, err := localdrf.LStable(p, m, set)
		if err != nil {
			fail(err)
		}
		fmt.Printf("initial state L-stable for L=%v: %v\n", L, stable)
		if stable {
			if err := localdrf.CheckLocalDRFFrom(m, set); err != nil {
				fail(err)
			}
			fmt.Println("local DRF theorem verified from the initial state (thm 13)")
		}
	}
}

func joinLocs(locs []localdrf.Loc) string {
	ss := make([]string, len(locs))
	for i, l := range locs {
		ss[i] = string(l)
	}
	return strings.Join(ss, ", ")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
