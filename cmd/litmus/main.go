// Command litmus runs litmus tests under the paper's models.
//
// Usage:
//
//	litmus -list
//	litmus -run MP [-model op|ax|x86|arm-bal|arm-fbs|arm-sra|arm-naive]
//	litmus -file test.litmus [-model ...]
//
// With -run/-file, the program's outcome set under the selected model is
// printed; for catalogued tests, each check's verdict is evaluated. The
// text format accepted by -file is documented in the README.
package main

import (
	"flag"
	"fmt"
	"os"

	"localdrf"
)

func main() {
	list := flag.Bool("list", false, "list catalogued litmus tests")
	run := flag.String("run", "", "run a catalogued test by name (or 'all')")
	file := flag.String("file", "", "run a litmus file")
	model := flag.String("model", "op", "model: op, ax, x86, x86-movstore, arm-bal, arm-fbs, arm-sra, arm-naive, arm-naive-atomics")
	flag.Parse()

	switch {
	case *list:
		for _, t := range localdrf.LitmusSuite() {
			fmt.Printf("%-24s %s\n", t.Name, t.Description)
		}
	case *run == "all":
		for _, t := range localdrf.LitmusSuite() {
			if err := runTest(t, *model); err != nil {
				fail(err)
			}
		}
	case *run != "":
		t, ok := localdrf.LitmusTestByName(*run)
		if !ok {
			fail(fmt.Errorf("unknown test %q (try -list)", *run))
		}
		if err := runTest(t, *model); err != nil {
			fail(err)
		}
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := localdrf.ParseProgram(string(src))
		if err != nil {
			fail(err)
		}
		set, err := outcomes(p, *model)
		if err != nil {
			fail(err)
		}
		printOutcomes(p.Name, set)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func outcomes(p *localdrf.Program, model string) (*localdrf.OutcomeSet, error) {
	switch model {
	case "op":
		return localdrf.Outcomes(p)
	case "sc":
		return localdrf.OutcomesSC(p)
	case "ax":
		return localdrf.OutcomesAxiomatic(p)
	}
	scheme, ok := map[string]localdrf.Scheme{
		"x86":               localdrf.SchemeX86,
		"x86-movstore":      localdrf.SchemeX86PlainAtomicStore,
		"arm-bal":           localdrf.SchemeARMBal,
		"arm-fbs":           localdrf.SchemeARMFbs,
		"arm-sra":           localdrf.SchemeARMSra,
		"arm-naive":         localdrf.SchemeARMNaive,
		"arm-naive-atomics": localdrf.SchemeARMNaiveAtomics,
	}[model]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", model)
	}
	hp, err := localdrf.Compile(p, scheme)
	if err != nil {
		return nil, err
	}
	return localdrf.HardwareOutcomes(hp, localdrf.HardwareModel(scheme))
}

func runTest(t localdrf.LitmusTest, model string) error {
	set, err := outcomes(t.Prog, model)
	if err != nil {
		return fmt.Errorf("%s: %w", t.Name, err)
	}
	fmt.Printf("%s (%s) under %s:\n", t.Name, t.Description, model)
	for _, c := range t.Checks {
		verdict := "forbidden"
		if set.Exists(c.Pred) {
			verdict = "allowed"
		}
		marker := " "
		if model == "op" || model == "ax" {
			if (verdict == "allowed") != (c.Want == localdrf.LitmusAllowed) {
				marker = "✗"
			} else {
				marker = "✓"
			}
		}
		fmt.Printf("  %s %-28s %s (model verdict: %v)\n", marker, c.Name, verdict, c.Want)
	}
	fmt.Printf("  %d distinct outcomes\n", set.Len())
	return nil
}

func printOutcomes(name string, set *localdrf.OutcomeSet) {
	fmt.Printf("%s: %d outcomes\n", name, set.Len())
	for _, k := range set.Keys() {
		fmt.Printf("  %s\n", k)
	}
}
