// Command litmus runs litmus tests under the paper's models.
//
// Usage:
//
//	litmus -list
//	litmus -run MP [-model op|ax|x86|arm-bal|arm-fbs|arm-sra|arm-naive]
//	litmus -file test.litmus [-model ...]
//
// With -run/-file, the program's outcome set under the selected model is
// printed; for catalogued tests, each check's verdict is evaluated. The
// text format accepted by -file is documented in the README.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"localdrf"
	"localdrf/internal/engine"
)

func main() {
	list := flag.Bool("list", false, "list catalogued litmus tests")
	run := flag.String("run", "", "run a catalogued test by name (or 'all')")
	file := flag.String("file", "", "run a litmus file")
	model := flag.String("model", "op", "model: op, ax, x86, x86-movstore, arm-bal, arm-fbs, arm-sra, arm-naive, arm-naive-atomics")
	par := flag.Int("par", 0, "worker parallelism for -run all (0 = GOMAXPROCS)")
	flag.Parse()

	switch {
	case *list:
		for _, t := range localdrf.LitmusSuite() {
			fmt.Printf("%-24s %s\n", t.Name, t.Description)
		}
	case *run == "all":
		// The whole corpus runs concurrently on the engine's task runner
		// (each test's own exploration stays single-threaded so workers
		// aren't oversubscribed); rendered reports are buffered and
		// printed in catalogue order.
		suite := localdrf.LitmusSuite()
		reports := make([]string, len(suite))
		err := engine.ForEach(*par, len(suite), func(_, i int) error {
			var err error
			reports[i], err = renderTest(suite[i], *model, 1)
			return err
		})
		for _, r := range reports {
			if r != "" {
				fmt.Print(r)
			}
		}
		if err != nil {
			fail(err)
		}
	case *run != "":
		t, ok := localdrf.LitmusTestByName(*run)
		if !ok {
			fail(fmt.Errorf("unknown test %q (try -list)", *run))
		}
		if err := runTest(t, *model); err != nil {
			fail(err)
		}
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := localdrf.ParseProgram(string(src))
		if err != nil {
			fail(err)
		}
		set, err := outcomes(p, *model, 0)
		if err != nil {
			fail(err)
		}
		printOutcomes(p.Name, set)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// outcomes enumerates p under the selected model. innerPar is the
// engine parallelism for the operational and hardware models (0 means
// GOMAXPROCS; batch runs pass 1 because the corpus fan-out owns the
// cores).
func outcomes(p *localdrf.Program, model string, innerPar int) (*localdrf.OutcomeSet, error) {
	switch model {
	case "op":
		return localdrf.OutcomesOpt(p, localdrf.ExploreOptions{Parallelism: innerPar})
	case "sc":
		return localdrf.OutcomesOpt(p, localdrf.ExploreOptions{SCOnly: true, Parallelism: innerPar})
	case "ax":
		return localdrf.OutcomesAxiomatic(p)
	}
	scheme, ok := map[string]localdrf.Scheme{
		"x86":               localdrf.SchemeX86,
		"x86-movstore":      localdrf.SchemeX86PlainAtomicStore,
		"arm-bal":           localdrf.SchemeARMBal,
		"arm-fbs":           localdrf.SchemeARMFbs,
		"arm-sra":           localdrf.SchemeARMSra,
		"arm-naive":         localdrf.SchemeARMNaive,
		"arm-naive-atomics": localdrf.SchemeARMNaiveAtomics,
	}[model]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", model)
	}
	hp, err := localdrf.Compile(p, scheme)
	if err != nil {
		return nil, err
	}
	return localdrf.HardwareOutcomesParallel(hp, localdrf.HardwareModel(scheme), innerPar)
}

func runTest(t localdrf.LitmusTest, model string) error {
	report, err := renderTest(t, model, 0)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func renderTest(t localdrf.LitmusTest, model string, innerPar int) (string, error) {
	set, err := outcomes(t.Prog, model, innerPar)
	if err != nil {
		return "", fmt.Errorf("%s: %w", t.Name, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s) under %s:\n", t.Name, t.Description, model)
	for _, c := range t.Checks {
		verdict := "forbidden"
		if set.Exists(c.Pred) {
			verdict = "allowed"
		}
		marker := " "
		if model == "op" || model == "ax" {
			if (verdict == "allowed") != (c.Want == localdrf.LitmusAllowed) {
				marker = "✗"
			} else {
				marker = "✓"
			}
		}
		fmt.Fprintf(&b, "  %s %-28s %s (model verdict: %v)\n", marker, c.Name, verdict, c.Want)
	}
	fmt.Fprintf(&b, "  %d distinct outcomes\n", set.Len())
	return b.String(), nil
}

func printOutcomes(name string, set *localdrf.OutcomeSet) {
	fmt.Printf("%s: %d outcomes\n", name, set.Len())
	for _, k := range set.Keys() {
		fmt.Printf("  %s\n", k)
	}
}
