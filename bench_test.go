package localdrf

// The benchmark harness: one testing.B target per table and figure of
// the paper (plus ablations). Each benchmark regenerates the experiment
// behind its table/figure; EXPERIMENTS.md records the resulting
// paper-vs-measured comparison. Run with:
//
//	go test -bench=. -benchmem
//
// The semantic benchmarks (equivalence, soundness) measure the checkers
// themselves; the fig. 5 benchmarks measure the pipeline simulator runs
// that produce the normalised-time series.

import (
	"testing"

	"localdrf/internal/engine"
	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/schedgen"
)

// BenchmarkFig1Operational exercises the operational semantics of fig. 1
// by exhaustively enumerating the behaviours of message passing on the
// parallel exploration engine (compact binary state interning).
func BenchmarkFig1Operational(b *testing.B) {
	p := mpProgram()
	for i := 0; i < b.N; i++ {
		if _, err := Outcomes(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1OperationalSequential is the same enumeration on the
// single-threaded memoised reference path (the seed implementation),
// kept as the baseline the engine is measured against.
func BenchmarkFig1OperationalSequential(b *testing.B) {
	p := mpProgram()
	for i := 0; i < b.N; i++ {
		if _, err := OutcomesSequential(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLitmusSweep enumerates the outcome sets of the entire litmus
// catalogue on the exploration engine, fanning the corpus across the
// engine's task runner — the many-scenario workload cmd/litmus -run all
// and cmd/experiments exercise.
func BenchmarkLitmusSweep(b *testing.B) {
	suite := LitmusSuite()
	for i := 0; i < b.N; i++ {
		err := engine.ForEach(0, len(suite), func(_, j int) error {
			// Single-threaded per test: the corpus fan-out owns the cores.
			_, err := OutcomesOpt(suite[j].Prog, ExploreOptions{Parallelism: 1})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLitmusSweepSequential is the corpus sweep on the sequential
// reference path, one test at a time.
func BenchmarkLitmusSweepSequential(b *testing.B) {
	suite := LitmusSuite()
	for i := 0; i < b.N; i++ {
		for _, tc := range suite {
			if _, err := OutcomesSequential(tc.Prog); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamingMonitor measures the full racemon pipeline at the
// million-event scale: generate a bursty schedule of a scaled random
// program, then monitor it online — the workload the exhaustive
// checkers cannot reach (BENCH_monitor.json tracks the monitoring half
// alone; this benchmark covers generation + monitoring end to end).
func BenchmarkStreamingMonitor(b *testing.B) {
	const nevents = 1_000_000
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(nevents)
	p := progsynth.Scaled(1, cfg)
	tb := monitor.NewTable(p)
	mon := tb.NewMonitor()
	var stream []monitor.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		stream, _, err = schedgen.Generate(p, tb, schedgen.Options{
			Policy: schedgen.Bursty, Seed: 1, MaxEvents: nevents, StaleReadPct: 10,
		}, stream[:0])
		if err != nil {
			b.Fatal(err)
		}
		mon.Reset()
		for _, e := range stream {
			mon.Step(e)
		}
	}
}

// BenchmarkFig2Axiomatic exercises the event-graph generation and
// consistency axioms of §6 on the same program.
func BenchmarkFig2Axiomatic(b *testing.B) {
	p := mpProgram()
	for i := 0; i < b.N; i++ {
		if _, err := OutcomesAxiomatic(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorems15And16Equivalence measures the full empirical
// equivalence check between the two semantics.
func BenchmarkTheorems15And16Equivalence(b *testing.B) {
	p := mpProgram()
	for i := 0; i < b.N; i++ {
		op, err := Outcomes(p)
		if err != nil {
			b.Fatal(err)
		}
		ax, err := OutcomesAxiomatic(p)
		if err != nil {
			b.Fatal(err)
		}
		if !op.Equal(ax) {
			b.Fatal("models diverged")
		}
	}
}

// BenchmarkTheorem13LocalDRF measures the local-DRF theorem checker on
// Example 1's program (race on c, L = {a, b}).
func BenchmarkTheorem13LocalDRF(b *testing.B) {
	tc, ok := LitmusTestByName("Example1")
	if !ok {
		b.Fatal("Example1 missing")
	}
	L := NewLocSet("a", "b")
	for i := 0; i < b.N; i++ {
		if err := CheckLocalDRFFrom(NewMachine(tc.Prog), L); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem14GlobalDRF measures the derived global-DRF check on a
// properly synchronised program.
func BenchmarkTheorem14GlobalDRF(b *testing.B) {
	p := NewProgram("MP-guarded").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").
		Load("r0", "F").
		JmpZ("r0", "skip").
		Load("r1", "x").
		Label("skip").
		Done().
		MustBuild()
	for i := 0; i < b.N; i++ {
		if err := CheckGlobalDRF(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExamples123 verifies all of §2's example verdicts (the
// space/time bounding results of table-less §2).
func BenchmarkExamples123(b *testing.B) {
	names := []string{"Example1", "Example2", "Example3"}
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			tc, _ := LitmusTestByName(n)
			if err := VerifyLitmus(tc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1X86 regenerates the table-1 soundness experiment:
// compile the litmus suite to x86-TSO and check hw ⊆ sw (thm. 19).
func BenchmarkTable1X86(b *testing.B) {
	suite := LitmusSuite()
	for i := 0; i < b.N; i++ {
		for _, tc := range suite {
			if err := CheckCompilation(tc.Prog, SchemeX86); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2aARMBal regenerates the table-2a soundness experiment
// (thm. 20, branch-after-load).
func BenchmarkTable2aARMBal(b *testing.B) {
	benchARMScheme(b, SchemeARMBal)
}

// BenchmarkTable2bARMFbs regenerates the table-2b soundness experiment
// (thm. 20, fence-before-store).
func BenchmarkTable2bARMFbs(b *testing.B) {
	benchARMScheme(b, SchemeARMFbs)
}

func benchARMScheme(b *testing.B, s Scheme) {
	suite := LitmusSuite()
	for i := 0; i < b.N; i++ {
		for _, tc := range suite {
			if err := CheckCompilation(tc.Prog, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationARMNaive measures the detection of the naive scheme's
// load-buffering leak (the §9.1 counterexample).
func BenchmarkAblationARMNaive(b *testing.B) {
	tc, _ := LitmusTestByName("LB")
	for i := 0; i < b.N; i++ {
		if err := CheckCompilation(tc.Prog, SchemeARMNaive); err == nil {
			b.Fatal("naive scheme unexpectedly sound")
		}
	}
}

// BenchmarkSection71Optimiser measures the optimisation derivations of
// §7.1 (CSE, DSE, const-prop) plus the RSE rejection.
func BenchmarkSection71Optimiser(b *testing.B) {
	p := NewProgram("opt").
		Vars("a", "b", "c").
		Thread("P0").
		StoreI("a", 1).
		Load("rc", "c").
		StoreR("b", "rc").
		StoreI("a", 2).
		Load("r", "a").
		Load("rc2", "c").
		Done().
		MustBuild()
	f := ThreadFragment(p, 0)
	for i := 0; i < b.N; i++ {
		if _, _, err := CSE(f, p); err != nil {
			b.Fatal(err)
		}
		if _, _, err := DSE(f, p); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ConstProp(f, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aWorkloads regenerates the fig. 5a access-distribution
// table (workload suite definitions and body synthesis).
func BenchmarkFig5aWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range Benchmarks() {
			if len(w.Body()) == 0 {
				b.Fatal("empty body")
			}
		}
	}
}

// BenchmarkFig5bAArch64 regenerates one series of fig. 5b: simulated
// normalised time on the ThunderX profile, per scheme, on a
// representative benchmark (minilight: FP-heavy, high access rate).
func BenchmarkFig5bAArch64(b *testing.B) {
	w, _ := BenchmarkByName("minilight")
	arch := ArchThunderX()
	for _, s := range []PerfScheme{PerfBAL, PerfFBS, PerfSRA} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if n := SimNormalized(w, arch, s); n < 0.5 {
					b.Fatal("implausible normalised time")
				}
			}
		})
	}
}

// BenchmarkFig5cPower regenerates one series of fig. 5c on the POWER
// profile (kb: symbolic, integer-only).
func BenchmarkFig5cPower(b *testing.B) {
	w, _ := BenchmarkByName("kb")
	arch := ArchPower()
	for _, s := range []PerfScheme{PerfBAL, PerfFBS, PerfSRA} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if n := SimNormalized(w, arch, s); n < 0.5 {
					b.Fatal("implausible normalised time")
				}
			}
		})
	}
}

// BenchmarkSection83Padding regenerates the §8.3 nop-padding control
// experiment on the alignment-sensitive benchmark.
func BenchmarkSection83Padding(b *testing.B) {
	w, _ := BenchmarkByName("sequence")
	arch := ArchThunderX()
	for i := 0; i < b.N; i++ {
		if n := SimNormalized(w, arch, PerfBaselinePadded); n >= 1.0 {
			b.Fatal("padding should win on sequence")
		}
	}
}
