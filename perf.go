package localdrf

import (
	"localdrf/internal/sim"
	"localdrf/internal/workload"
)

// ---- Performance evaluation (§8, simulated; see DESIGN.md) ----

// Benchmark is one fig. 5a workload: the paper's name and access rate
// with a reconstructed access-class mix.
type Benchmark = workload.Benchmark

// Arch is a simulated processor profile.
type Arch = sim.Arch

// PerfScheme is a nonatomic-access compilation scheme for the simulator
// (baseline, BAL, FBS, SRA, and the §8.3 nop-padding control).
type PerfScheme = sim.Scheme

// Simulator schemes.
const (
	PerfBaseline       = sim.Baseline
	PerfBaselinePadded = sim.BaselinePadded
	PerfBAL            = sim.BAL
	PerfFBS            = sim.FBS
	PerfSRA            = sim.SRA
)

// ArchThunderX is the AArch64 profile (fig. 5b's machine).
func ArchThunderX() Arch { return sim.ThunderX() }

// ArchPower is the PowerPC profile (fig. 5c's machine).
func ArchPower() Arch { return sim.Power() }

// Benchmarks returns the 29-benchmark suite of fig. 5a.
func Benchmarks() []Benchmark { return workload.Suite() }

// BenchmarkByName looks up one workload.
func BenchmarkByName(name string) (Benchmark, bool) { return workload.Get(name) }

// SimNormalized returns the benchmark's simulated time under a scheme,
// normalised to the simulated baseline — the quantity figs. 5b/5c plot.
func SimNormalized(b Benchmark, arch Arch, s PerfScheme) float64 {
	return sim.Normalized(b, arch, s)
}

// SimSuite runs the whole suite under one scheme, returning per-benchmark
// normalised times and their mean (the statistic §8.3 quotes).
func SimSuite(arch Arch, s PerfScheme) (map[string]float64, float64) {
	return sim.SuiteNormalized(arch, s)
}
